package twin

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"powercap/internal/faultinject"
)

// Result is one Run's classified outcome. Goodput counts every 2xx answer
// — full-fidelity, browned, and degraded alike: the overload experiments
// are precisely about how much of the offered load still gets *an* answer,
// with the fidelity split reported alongside.
type Result struct {
	Scenario string  `json:"scenario"`
	Requests int     `json:"requests"`
	Retries  int     `json:"retries"`
	WallS    float64 `json:"wall_s"`

	OK       int `json:"ok"`
	OKFull   int `json:"ok_full"`
	Browned  int `json:"ok_browned"`
	Degraded int `json:"ok_degraded"`
	Cached   int `json:"ok_cached"`

	Rej429       int `json:"rejected_429"`
	Drain503     int `json:"unavailable_503"`
	Timeout504   int `json:"timeout_504"`
	Err5xx       int `json:"errors_5xx"`
	TransportErr int `json:"transport_errors"`

	// CapViolations counts realized schedules reporting a positive cap
	// violation — the invariant no overload response may break.
	CapViolations int `json:"cap_violations"`

	GoodputPerS float64 `json:"goodput_per_s"`
	P95MS       float64 `json:"p95_ms"`
}

// goodFrac is the fraction of issued requests that got a 2xx answer.
func (r *Result) GoodFrac() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.OK) / float64(r.Requests)
}

// RunOptions tunes the paced driver.
type RunOptions struct {
	// MaxInflight bounds concurrent requests (default 16) — enough to
	// overload a small worker pool, bounded so a single-CPU host is not
	// oversubscribed by the client itself.
	MaxInflight int
	// Client overrides the HTTP client (default: 60 s timeout).
	Client *http.Client
}

// solveBody is the subset of the service's solve response the classifier
// reads.
type solveBody struct {
	MakespanS float64 `json:"makespan_s"`
	Degraded  bool    `json:"degraded"`
	Brownout  string  `json:"brownout"`
	Cached    bool    `json:"cached"`
	Realized  *struct {
		CapViolationW float64 `json:"cap_violation_w"`
	} `json:"realized"`
}

// faultClasses maps FaultWindow class names onto faultinject classes.
var faultClasses = map[string]faultinject.Class{
	"lp-nan":       faultinject.LPNaN,
	"lp-stall":     faultinject.LPStall,
	"cache-error":  faultinject.CacheError,
	"worker-panic": faultinject.WorkerPanic,
	"slow-solve":   faultinject.SlowSolve,
}

// activeFaults returns the fault rates armed at scenario offset nowMS.
func activeFaults(windows []FaultWindow, nowMS float64) map[faultinject.Class]float64 {
	var rates map[faultinject.Class]float64
	for _, w := range windows {
		if nowMS < w.StartMS || nowMS >= w.EndMS {
			continue
		}
		cl, ok := faultClasses[w.Class]
		if !ok {
			continue
		}
		if rates == nil {
			rates = make(map[faultinject.Class]float64)
		}
		rates[cl] = w.Prob
	}
	return rates
}

func sameRates(a, b map[faultinject.Class]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Run paces the scenario's schedule against the daemon at base in real
// time, honoring fault windows (faultinject is process-global, so base must
// be an in-process test server for faults to arm) and the retry policy, and
// classifies every response. Not deterministic — this is the load-test
// mode; use Record/Replay for regressions.
func Run(base string, sc Scenario, opt RunOptions) *Result {
	if opt.MaxInflight <= 0 {
		opt.MaxInflight = 16
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	sched := sc.Schedule()
	res := &Result{Scenario: sc.Name, Requests: len(sched)}

	var mu sync.Mutex
	var latencies []float64
	record := func(f func()) { mu.Lock(); f(); mu.Unlock() }

	var cur map[faultinject.Class]float64
	defer func() {
		if cur != nil {
			faultinject.Disable()
		}
	}()

	sem := make(chan struct{}, opt.MaxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range sched {
		req := &sched[i]
		if d := time.Duration(req.AtMS*float64(time.Millisecond)) - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		// Fault windows are evaluated at dispatch time on the paced clock.
		if want := activeFaults(sc.Faults, float64(time.Since(start))/float64(time.Millisecond)); !sameRates(cur, want) {
			if want == nil {
				faultinject.Disable()
			} else {
				faultinject.Configure(sc.Seed, want)
			}
			cur = want
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(req *Request) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			status, body, retries, terr := issue(client, base, req, sc.Retry)
			lat := float64(time.Since(t0)) / float64(time.Millisecond)
			record(func() {
				res.Retries += retries
				if terr != nil {
					res.TransportErr++
					return
				}
				latencies = append(latencies, lat)
				classify(res, status, body)
			})
		}(req)
	}
	wg.Wait()
	res.WallS = time.Since(start).Seconds()
	if res.WallS > 0 {
		res.GoodputPerS = float64(res.OK) / res.WallS
	}
	res.P95MS = p95(latencies)
	return res
}

func classify(res *Result, status int, body []byte) {
	switch {
	case status == http.StatusOK:
		res.OK++
		var sb solveBody
		if json.Unmarshal(body, &sb) != nil {
			return
		}
		switch {
		case sb.Brownout != "":
			res.Browned++
		case sb.Degraded:
			res.Degraded++
		default:
			res.OKFull++
		}
		if sb.Cached {
			res.Cached++
		}
		if sb.Realized != nil && sb.Realized.CapViolationW > 0 {
			res.CapViolations++
		}
	case status == http.StatusTooManyRequests:
		res.Rej429++
	case status == http.StatusServiceUnavailable:
		res.Drain503++
	case status == http.StatusGatewayTimeout:
		res.Timeout504++
	case status >= 500:
		res.Err5xx++
	}
}

// issue posts one request, applying the retry policy on 429s. Returns the
// final status/body and the number of retries spent.
func issue(client *http.Client, base string, req *Request, rp RetryPolicy) (status int, body []byte, retries int, err error) {
	payload, err := json.Marshal(map[string]any{
		"workload":         req.Workload,
		"cap_per_socket_w": req.CapPerSocketW,
		"realize":          req.Realize,
		"timeout_ms":       req.TimeoutMS,
	})
	if err != nil {
		return 0, nil, 0, err
	}
	for attempt := 0; ; attempt++ {
		hr, herr := http.NewRequest(http.MethodPost, base+"/v1/solve", bytes.NewReader(payload))
		if herr != nil {
			return 0, nil, retries, herr
		}
		hr.Header.Set("Content-Type", "application/json")
		if attempt > 0 {
			hr.Header.Set("X-Retry-Attempt", strconv.Itoa(attempt))
		}
		resp, derr := client.Do(hr)
		if derr != nil {
			return 0, nil, retries, derr
		}
		var buf bytes.Buffer
		_, rerr := buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return 0, nil, retries, rerr
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= rp.MaxRetries {
			return resp.StatusCode, buf.Bytes(), retries, nil
		}
		delay := rp.DelayMS
		if rp.HonorRetryAfter {
			if ra, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && ra > 0 {
				if hinted := float64(ra) * 1000; hinted > delay {
					delay = hinted
				}
				if maxD := rp.DelayMS * 8; maxD > 0 && delay > maxD {
					delay = maxD
				}
			}
		}
		if delay > 0 {
			time.Sleep(time.Duration(delay * float64(time.Millisecond)))
		}
		retries++
	}
}

func p95(ms []float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	sort.Float64s(ms)
	i := int(0.95 * float64(len(ms)))
	if i >= len(ms) {
		i = len(ms) - 1
	}
	return ms[i]
}

// String renders the result as one compact report line.
func (r *Result) String() string {
	return fmt.Sprintf(
		"%s: %d req (%d retries) in %.1fs — ok %d (full %d, browned %d, degraded %d, cached %d), 429 %d, 503 %d, 504 %d, 5xx %d, transport %d, cap-violations %d, goodput %.1f/s, p95 %.0fms",
		r.Scenario, r.Requests, r.Retries, r.WallS,
		r.OK, r.OKFull, r.Browned, r.Degraded, r.Cached,
		r.Rej429, r.Drain503, r.Timeout504, r.Err5xx, r.TransportErr,
		r.CapViolations, r.GoodputPerS, r.P95MS)
}
