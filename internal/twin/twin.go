// Package twin is pcschedd's deterministic traffic twin: a seeded
// closed-loop load generator plus a record/replay harness, built so the
// service's overload behavior — flash crowds, retry storms, injected
// faults — can be reproduced exactly and regressed against.
//
// Two layers:
//
//   - Schedule generation is pure and deterministic: a Scenario (phased
//     arrival rates, a Zipf-skewed cap universe, workload mix, fault
//     windows) expands under a splitmix64 stream into the same []Request
//     for the same seed, byte for byte, on every machine.
//
//   - Driving is split by purpose. Run paces the schedule against a live
//     daemon in real time with bounded in-flight concurrency and
//     classifies every response (goodput vs shed vs failed) — that is the
//     load-test mode, where wall-clock and scheduling jitter are part of
//     the experiment. Record/Replay issue the schedule *serially* and
//     canonicalize each response (volatile fields stripped, keys sorted),
//     which makes the transcript a deterministic function of the daemon's
//     configuration — the regression mode: two replays against equivalent
//     daemons must produce byte-identical summaries.
package twin

import (
	"math"
	"sort"
)

// Workload names one built-in benchmark proxy in the twin's mix, mirroring
// the service's workload schema.
type Workload struct {
	Name  string  `json:"name"`
	Ranks int     `json:"ranks,omitempty"`
	Iters int     `json:"iters,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	Scale float64 `json:"scale,omitempty"`
}

// Phase is one arrival-rate regime: requests arrive with exponential
// interarrival gaps at RatePerS for DurMS of scenario time. Diurnal load is
// a ramp of phases; a flash crowd is one short phase at a rate far above
// service capacity.
type Phase struct {
	Name     string  `json:"name"`
	DurMS    float64 `json:"dur_ms"`
	RatePerS float64 `json:"rate_per_s"`
}

// FaultWindow arms one faultinject class at probability Prob for the
// scenario-time interval [StartMS, EndMS).
type FaultWindow struct {
	Class   string  `json:"class"` // faultinject class name, e.g. "lp-nan"
	Prob    float64 `json:"prob"`
	StartMS float64 `json:"start_ms"`
	EndMS   float64 `json:"end_ms"`
}

// RetryPolicy is the twin client's behavior on 429: up to MaxRetries
// re-sends, each tagged with an X-Retry-Attempt header, after DelayMS (or
// the server's Retry-After hint when HonorRetryAfter is set — capped to
// DelayMS×8 so a test cannot sleep for minutes).
type RetryPolicy struct {
	MaxRetries      int     `json:"max_retries"`
	DelayMS         float64 `json:"delay_ms"`
	HonorRetryAfter bool    `json:"honor_retry_after"`
}

// Scenario is a complete deterministic load description.
type Scenario struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`

	Phases    []Phase    `json:"phases"`
	Workloads []Workload `json:"workloads"`

	// Caps is the per-socket cap universe; requests draw from it with a
	// Zipf(ZipfS) rank distribution (index 0 most popular), so cache-hit
	// behavior under skewed traffic is part of the model. ZipfS 0 means
	// uniform.
	Caps  []float64 `json:"caps"`
	ZipfS float64   `json:"zipf_s"`

	// RealizeFrac of requests ask for an expensive realization ("best"),
	// giving the realize-down brownout rung something to downgrade.
	RealizeFrac float64 `json:"realize_frac,omitempty"`

	// TimeoutMS is the per-request deadline sent to the service (0 = none).
	TimeoutMS float64 `json:"timeout_ms,omitempty"`

	Retry  RetryPolicy   `json:"retry"`
	Faults []FaultWindow `json:"faults,omitempty"`
}

// Request is one scheduled arrival. AtMS is the offset from scenario start;
// the JSON-tagged fields are the solve request body.
type Request struct {
	AtMS float64 `json:"at_ms"`

	Workload      Workload `json:"workload"`
	CapPerSocketW float64  `json:"cap_per_socket_w"`
	Realize       string   `json:"realize,omitempty"`
	TimeoutMS     float64  `json:"timeout_ms,omitempty"`
}

// rng is a splitmix64 stream: tiny, seedable, and identical everywhere —
// the twin must not depend on math/rand's generator or shuffling order.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// float returns a uniform draw in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// expMS returns an exponential interarrival gap in ms for ratePerS.
func (r *rng) expMS(ratePerS float64) float64 {
	if ratePerS <= 0 {
		return math.Inf(1)
	}
	u := r.float()
	return -math.Log(1-u) * 1000 / ratePerS
}

// zipfCDF precomputes the cumulative Zipf(s) distribution over n ranks.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		if s <= 0 {
			sum += 1
		} else {
			sum += 1 / math.Pow(float64(i+1), s)
		}
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// Schedule expands the scenario into its deterministic arrival sequence.
// The same Scenario value always yields the same slice.
func (sc Scenario) Schedule() []Request {
	r := &rng{s: sc.Seed}
	capCDF := zipfCDF(len(sc.Caps), sc.ZipfS)
	var reqs []Request
	t := 0.0
	for _, ph := range sc.Phases {
		end := t + ph.DurMS
		for {
			t += r.expMS(ph.RatePerS)
			if t >= end {
				t = end
				break
			}
			req := Request{
				AtMS:      t,
				Workload:  sc.Workloads[int(r.next()%uint64(len(sc.Workloads)))],
				TimeoutMS: sc.TimeoutMS,
			}
			ci := sort.SearchFloat64s(capCDF, r.float())
			if ci >= len(sc.Caps) { // float round-off at the CDF tail
				ci = len(sc.Caps) - 1
			}
			req.CapPerSocketW = sc.Caps[ci]
			if sc.RealizeFrac > 0 && r.float() < sc.RealizeFrac {
				req.Realize = "best"
			}
			reqs = append(reqs, req)
		}
	}
	return reqs
}
