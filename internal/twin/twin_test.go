package twin

import (
	"net/http/httptest"
	"reflect"
	"testing"

	"powercap/internal/service"
)

var miniWorkloads = []Workload{
	{Name: "CoMD", Ranks: 2, Iters: 3, Seed: 1, Scale: 0.1},
	{Name: "SP", Ranks: 2, Iters: 3, Seed: 2, Scale: 0.1},
}

func miniScenario(seed uint64) Scenario {
	return Scenario{
		Name: "mini",
		Seed: seed,
		Phases: []Phase{
			{Name: "steady", DurMS: 200, RatePerS: 60},
			{Name: "burst", DurMS: 100, RatePerS: 300},
		},
		Workloads: miniWorkloads,
		Caps:      []float64{50, 55, 60, 65},
		ZipfS:     1.2,
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a := miniScenario(42).Schedule()
	b := miniScenario(42).Schedule()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same scenario produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	c := miniScenario(43).Schedule()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	last := -1.0
	for _, r := range a {
		if r.AtMS <= last {
			t.Fatalf("arrival times not strictly increasing: %g after %g", r.AtMS, last)
		}
		if r.AtMS > 300 {
			t.Fatalf("arrival %g ms beyond scenario duration", r.AtMS)
		}
		last = r.AtMS
	}
}

func TestScheduleRatesAndZipf(t *testing.T) {
	sc := Scenario{
		Seed: 7,
		Phases: []Phase{
			{Name: "quiet", DurMS: 1000, RatePerS: 20},
			{Name: "flash", DurMS: 1000, RatePerS: 400},
		},
		Workloads: miniWorkloads,
		Caps:      []float64{50, 55, 60, 65},
		ZipfS:     1.2,
	}
	sched := sc.Schedule()
	quiet, flash := 0, 0
	capCount := map[float64]int{}
	for _, r := range sched {
		if r.AtMS < 1000 {
			quiet++
		} else {
			flash++
		}
		capCount[r.CapPerSocketW]++
	}
	// ~20 vs ~400 arrivals; huge margin, no flakiness at fixed seed.
	if flash < quiet*5 {
		t.Fatalf("flash phase %d arrivals vs quiet %d, want ≥5×", flash, quiet)
	}
	// Zipf skew: the rank-0 cap dominates the tail cap.
	if capCount[50] <= capCount[65]*2 {
		t.Fatalf("cap 50 drawn %d times vs cap 65 %d, want clear Zipf skew", capCount[50], capCount[65])
	}
}

func TestCanonicalize(t *testing.T) {
	in := []byte(`{"request_id":"abc123","makespan_s":1.5,"elapsed_ms":42.1,"trace":{"x":1},"cached":true}`)
	got := Canonicalize(in)
	want := `{"cached":true,"makespan_s":1.5}`
	if got != want {
		t.Fatalf("canonicalized %q, want %q", got, want)
	}
	if got := Canonicalize([]byte("not json\n")); got != "not json" {
		t.Fatalf("non-JSON passthrough %q", got)
	}
	// Key order in the input must not matter.
	a := Canonicalize([]byte(`{"b":1,"a":2}`))
	b := Canonicalize([]byte(`{"a":2,"b":1}`))
	if a != b {
		t.Fatalf("key order leaked into canonical form: %q vs %q", a, b)
	}
}

func freshServer(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(service.New(service.Config{Workers: 2}))
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestRecordReplayDeterministic(t *testing.T) {
	sc := miniScenario(11)
	sc.Phases = []Phase{{Name: "serial", DurMS: 100, RatePerS: 100}} // ~10 requests

	// Two recordings against two fresh identical daemons must agree byte
	// for byte: serial issue order makes cache behavior deterministic.
	tapeA, err := Record(freshServer(t), sc)
	if err != nil {
		t.Fatal(err)
	}
	tapeB, err := Record(freshServer(t), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tapeA.Entries) == 0 {
		t.Fatal("empty tape")
	}
	if tapeA.Digest() != tapeB.Digest() {
		t.Fatalf("independent recordings diverge: %s vs %s", tapeA.Digest(), tapeB.Digest())
	}

	// Replaying the tape against two more fresh daemons: zero mismatches
	// and byte-identical summaries.
	repA, err := tapeA.Replay(freshServer(t))
	if err != nil {
		t.Fatal(err)
	}
	repB, err := tapeA.Replay(freshServer(t))
	if err != nil {
		t.Fatal(err)
	}
	if repA.Mismatches != 0 {
		t.Fatalf("replay mismatches: %s", repA.First)
	}
	if repA.Summary() != repB.Summary() {
		t.Fatalf("replay summaries diverge:\n  %s\n  %s", repA.Summary(), repB.Summary())
	}
}

func TestRunClassifiesResponses(t *testing.T) {
	sc := miniScenario(5)
	sc.Phases = []Phase{{Name: "steady", DurMS: 150, RatePerS: 100}}
	res := Run(freshServer(t), sc, RunOptions{MaxInflight: 4})
	if res.Requests == 0 || res.TransportErr != 0 {
		t.Fatalf("run: %s", res)
	}
	if res.OK == 0 {
		t.Fatalf("no goodput from an unloaded server: %s", res)
	}
	if sum := res.OK + res.Rej429 + res.Drain503 + res.Timeout504 + res.Err5xx; sum != res.Requests {
		t.Fatalf("classification does not partition: %d classified of %d (%s)", sum, res.Requests, res)
	}
	if res.CapViolations != 0 {
		t.Fatalf("cap violations on a clean run: %s", res)
	}
	if res.GoodputPerS <= 0 || res.P95MS <= 0 {
		t.Fatalf("missing derived stats: %s", res)
	}
}
