package twin

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Record/replay: the deterministic regression mode. Requests are issued
// strictly serially in schedule order — no pacing, no concurrency, no
// faults — so the daemon's responses are a pure function of its
// configuration and the request sequence. Volatile response fields
// (request_id, elapsed_ms, trace) are stripped and the rest re-marshaled
// with sorted keys; the resulting canonical transcript, and therefore the
// tape digest, must be byte-identical across runs against equivalent
// daemons. That is the contract the `-adapt=off` bit-identity regression
// rides on.

// TapeEntry is one recorded exchange.
type TapeEntry struct {
	Request json.RawMessage `json:"request"`
	Status  int             `json:"status"`
	Canon   string          `json:"canonical_response"`
}

// Tape is a recorded serial transcript.
type Tape struct {
	Scenario string      `json:"scenario"`
	Seed     uint64      `json:"seed"`
	Entries  []TapeEntry `json:"entries"`
}

// volatileFields are stripped before canonicalization: they vary per
// process or per run without the schedule artifact itself differing.
var volatileFields = []string{"request_id", "elapsed_ms", "trace"}

// Canonicalize strips volatile fields from a JSON response body and
// re-marshals it with sorted keys. Non-JSON bodies pass through verbatim.
func Canonicalize(body []byte) string {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return string(bytes.TrimSpace(body))
	}
	for _, f := range volatileFields {
		delete(m, f)
	}
	out, err := json.Marshal(m) // map marshal sorts keys
	if err != nil {
		return string(bytes.TrimSpace(body))
	}
	return string(out)
}

// postSerial issues one request body and returns status plus canonical
// response.
func postSerial(client *http.Client, base string, body []byte) (int, string, error) {
	resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, "", err
	}
	return resp.StatusCode, Canonicalize(buf.Bytes()), nil
}

// Record issues the scenario's schedule serially against the daemon at
// base and captures the canonical transcript.
func Record(base string, sc Scenario) (*Tape, error) {
	client := &http.Client{Timeout: 60 * time.Second}
	tape := &Tape{Scenario: sc.Name, Seed: sc.Seed}
	for i, req := range sc.Schedule() {
		body, err := json.Marshal(map[string]any{
			"workload":         req.Workload,
			"cap_per_socket_w": req.CapPerSocketW,
			"realize":          req.Realize,
			"timeout_ms":       req.TimeoutMS,
		})
		if err != nil {
			return nil, err
		}
		status, canon, err := postSerial(client, base, body)
		if err != nil {
			return nil, fmt.Errorf("record entry %d: %w", i, err)
		}
		tape.Entries = append(tape.Entries, TapeEntry{Request: body, Status: status, Canon: canon})
	}
	return tape, nil
}

// ReplayReport is the outcome of replaying a tape.
type ReplayReport struct {
	Total      int    `json:"total"`
	Mismatches int    `json:"mismatches"`
	First      string `json:"first_mismatch,omitempty"`
	Digest     string `json:"digest"`
}

// Summary renders the deterministic one-line replay summary; two replays
// of the same tape against equivalent daemons must produce byte-identical
// summaries.
func (r *ReplayReport) Summary() string {
	return fmt.Sprintf("entries=%d mismatches=%d digest=%s", r.Total, r.Mismatches, r.Digest)
}

// Replay re-issues the tape's requests serially against the daemon at base
// and compares each canonical response against the recording. The digest
// covers the *live* responses, so two replays agree iff the daemon answered
// identically both times.
func (t *Tape) Replay(base string) (*ReplayReport, error) {
	client := &http.Client{Timeout: 60 * time.Second}
	rep := &ReplayReport{Total: len(t.Entries)}
	h := sha256.New()
	for i, e := range t.Entries {
		status, canon, err := postSerial(client, base, e.Request)
		if err != nil {
			return nil, fmt.Errorf("replay entry %d: %w", i, err)
		}
		fmt.Fprintf(h, "%d %d %s\n", i, status, canon)
		if status != e.Status || canon != e.Canon {
			rep.Mismatches++
			if rep.First == "" {
				rep.First = fmt.Sprintf("entry %d: status %d→%d, body %q → %q", i, e.Status, status, e.Canon, canon)
			}
		}
	}
	rep.Digest = hex.EncodeToString(h.Sum(nil))
	return rep, nil
}

// Digest hashes the recorded transcript itself (status + canonical body per
// entry), for comparing two independent recordings.
func (t *Tape) Digest() string {
	h := sha256.New()
	for i, e := range t.Entries {
		fmt.Fprintf(h, "%d %d %s\n", i, e.Status, e.Canon)
	}
	return hex.EncodeToString(h.Sum(nil))
}
