package pareto

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"powercap/internal/machine"
)

func TestFilterBasic(t *testing.T) {
	pts := []Point{
		{PowerW: 10, TimeS: 10, Index: 0},
		{PowerW: 20, TimeS: 5, Index: 1},
		{PowerW: 15, TimeS: 9, Index: 2},
		{PowerW: 25, TimeS: 6, Index: 3}, // dominated by index 1
		{PowerW: 30, TimeS: 4, Index: 4},
	}
	pf := Filter(pts)
	want := map[int]bool{0: true, 1: true, 2: true, 4: true}
	if len(pf) != len(want) {
		t.Fatalf("got %d points, want %d: %+v", len(pf), len(want), pf)
	}
	for _, p := range pf {
		if !want[p.Index] {
			t.Fatalf("unexpected point in frontier: %+v", p)
		}
	}
	if !sort.SliceIsSorted(pf, func(i, j int) bool { return pf[i].PowerW < pf[j].PowerW }) {
		t.Fatal("frontier not sorted by power")
	}
}

func TestFilterCollapsesDuplicates(t *testing.T) {
	pts := []Point{{10, 5, 0}, {10, 5, 1}, {10, 7, 2}}
	pf := Filter(pts)
	if len(pf) != 1 {
		t.Fatalf("got %d points, want 1", len(pf))
	}
}

func TestFilterEmpty(t *testing.T) {
	if Filter(nil) != nil {
		t.Fatal("Filter(nil) should be nil")
	}
}

func TestConvexFrontierDropsConcavePoints(t *testing.T) {
	// Middle point lies above the segment joining its neighbors → dropped.
	pts := []Point{
		{PowerW: 10, TimeS: 10, Index: 0},
		{PowerW: 20, TimeS: 9, Index: 1}, // above segment (10,10)-(30,4)
		{PowerW: 30, TimeS: 4, Index: 2},
	}
	hull := ConvexFrontier(pts)
	if len(hull) != 2 || hull[0].Index != 0 || hull[1].Index != 2 {
		t.Fatalf("hull = %+v, want endpoints only", hull)
	}
}

func TestConvexFrontierKeepsConvexPoints(t *testing.T) {
	pts := []Point{
		{PowerW: 10, TimeS: 10, Index: 0},
		{PowerW: 20, TimeS: 5, Index: 1}, // below the chord: a true hull vertex
		{PowerW: 30, TimeS: 4, Index: 2},
	}
	hull := ConvexFrontier(pts)
	if len(hull) != 3 {
		t.Fatalf("hull = %+v, want all 3", hull)
	}
}

func TestInterpolateTime(t *testing.T) {
	hull := []Point{{10, 10, 0}, {20, 5, 1}, {40, 3, 2}}
	cases := []struct{ p, want float64 }{
		{5, 10},   // clamp low
		{10, 10},  // endpoint
		{15, 7.5}, // midpoint of first segment
		{30, 4},   // midpoint of second segment
		{40, 3},   // endpoint
		{99, 3},   // clamp high
	}
	for _, c := range cases {
		if got := InterpolateTime(hull, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("InterpolateTime(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestFeasibleAndBestUnderCap(t *testing.T) {
	hull := []Point{{10, 10, 0}, {20, 5, 1}, {40, 3, 2}}
	if !Feasible(hull, 10) || Feasible(hull, 9) {
		t.Fatal("Feasible boundary wrong")
	}
	if p, ok := BestUnderCap(hull, 25); !ok || p.Index != 1 {
		t.Fatalf("BestUnderCap(25) = %+v, %v", p, ok)
	}
	if _, ok := BestUnderCap(hull, 5); ok {
		t.Fatal("BestUnderCap below min power should fail")
	}
	if p, ok := BestUnderCap(hull, 1000); !ok || p.Index != 2 {
		t.Fatalf("BestUnderCap(∞) = %+v", p)
	}
}

func TestNearestToMix(t *testing.T) {
	hull := []Point{{10, 10, 0}, {20, 5, 1}, {40, 3, 2}}
	if p, _ := NearestToMix(hull, 22); p.Index != 1 {
		t.Fatalf("NearestToMix(22) = %+v, want index 1", p)
	}
	if p, _ := NearestToMix(hull, 31); p.Index != 2 {
		t.Fatalf("NearestToMix(31) = %+v, want index 2", p)
	}
	if _, ok := NearestToMix(nil, 10); ok {
		t.Fatal("NearestToMix(nil) should fail")
	}
}

// TestPropertyHullInvariants checks on random clouds that:
//  1. the hull is a subset of the Pareto set,
//  2. power strictly increases and time strictly decreases along the hull,
//  3. the hull is convex (slopes non-decreasing),
//  4. every input point lies on or above the hull interpolation.
func TestPropertyHullInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				PowerW: 5 + rng.Float64()*95,
				TimeS:  0.1 + rng.Float64()*10,
				Index:  i,
			}
		}
		hull := ConvexFrontier(pts)
		if len(hull) == 0 {
			return false
		}
		pf := Filter(pts)
		inPF := map[int]bool{}
		for _, p := range pf {
			inPF[p.Index] = true
		}
		for _, h := range hull {
			if !inPF[h.Index] {
				return false // (1)
			}
		}
		for i := 1; i < len(hull); i++ {
			if hull[i].PowerW <= hull[i-1].PowerW || hull[i].TimeS >= hull[i-1].TimeS {
				return false // (2)
			}
		}
		for i := 2; i < len(hull); i++ {
			s1 := (hull[i-1].TimeS - hull[i-2].TimeS) / (hull[i-1].PowerW - hull[i-2].PowerW)
			s2 := (hull[i].TimeS - hull[i-1].TimeS) / (hull[i].PowerW - hull[i-1].PowerW)
			if s2 < s1-1e-9 {
				return false // (3): slopes must increase toward 0 (less negative)
			}
		}
		for _, p := range pts {
			if p.PowerW >= hull[0].PowerW {
				if p.TimeS < InterpolateTime(hull, p.PowerW)-1e-9 {
					return false // (4)
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestMachineCloudFrontier ties the two substrates together: the frontier of
// a realistic machine-model configuration cloud must include the maximum
// configuration (fastest point) and a bottom-frequency point (cheapest), as
// in the paper's Figure 1 where sub-maximal thread counts only appear on the
// frontier at the minimum frequency.
func TestMachineCloudFrontier(t *testing.T) {
	m := machine.Default()
	shape := machine.DefaultShape()
	cfgs := m.Configs()
	pts := make([]Point, len(cfgs))
	for i, c := range cfgs {
		pts[i] = Point{
			PowerW: m.Power(shape, c, 1),
			TimeS:  m.Duration(1.0, shape, c),
			Index:  i,
		}
	}
	hull := ConvexFrontier(pts)
	if len(hull) < 3 {
		t.Fatalf("suspiciously small hull: %d points", len(hull))
	}
	fastest := hull[len(hull)-1]
	if cfgs[fastest.Index] != m.MaxConfig() {
		t.Fatalf("fastest frontier point is %v, want %v", cfgs[fastest.Index], m.MaxConfig())
	}
	cheapest := hull[0]
	if cfgs[cheapest.Index].FreqGHz != m.FreqMinGHz {
		t.Fatalf("cheapest frontier point is %v, want bottom frequency", cfgs[cheapest.Index])
	}
	// Paper (Sec. 3.2, Table 1): the frontier's upper region is the
	// 8-thread DVFS chain, and thread reduction only becomes
	// Pareto-efficient below it. We assert the two robust structural
	// facts — every sub-maximal-thread frontier point draws less power
	// than 8 threads at the DVFS floor, and the 8-thread chain itself is
	// convex (so many of its states survive on the hull). The paper's
	// stronger claim that reduced-thread points sit exactly at the
	// minimum frequency is an artifact of its machine's calibration; in
	// the low-power tail frequency bumps cost only a few cores' dynamic
	// power and can legitimately ride the hull.
	// Thread reduction may interleave with the last couple of DVFS steps
	// near the floor (e.g. 7 threads at 1.4 GHz vs 8 at 1.2 GHz is
	// genuinely competitive), but everywhere above that band the
	// 8-thread chain must own the frontier.
	pBand := m.Power(shape, machine.Config{FreqGHz: m.FreqMinGHz + 3*m.FreqStepGHz, Threads: m.Cores}, 1)
	eightThreadStates := 0
	for _, h := range hull {
		c := cfgs[h.Index]
		if c.Threads == m.Cores {
			eightThreadStates++
		}
		if c.Threads < m.Cores && h.PowerW >= pBand {
			t.Fatalf("thread reduction appears on frontier well above the 8-thread DVFS floor: %v (%.1f W)", c, h.PowerW)
		}
	}
	if eightThreadStates < 8 {
		t.Fatalf("only %d of 15 8-thread DVFS states on the hull; expected the Table-1-like chain", eightThreadStates)
	}
}
