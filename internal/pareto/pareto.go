// Package pareto computes time/power Pareto frontiers of task
// configurations, and the convex subset of a frontier.
//
// Section 3.2 of the paper requires "Pareto-efficient, convex (with respect
// to power and time) sets of configurations for each task in order to create
// a purely linear formulation": the continuous LP mixes configurations
// convexly (Eqs. 6–9), so any configuration above the lower convex hull of
// the (power, time) cloud can never appear in an optimal mix, and a
// non-convex frontier would require integer variables. Figure 1 of the
// paper shows such a cloud and its convex frontier for one CoMD task.
package pareto

import "sort"

// Point is one configuration's operating point, tagged with the caller's
// index into its configuration table.
type Point struct {
	PowerW float64
	TimeS  float64
	Index  int
}

// dominates reports whether a is at least as good as b in both dimensions
// and strictly better in at least one (lower is better for both).
func dominates(a, b Point) bool {
	if a.PowerW > b.PowerW || a.TimeS > b.TimeS {
		return false
	}
	return a.PowerW < b.PowerW || a.TimeS < b.TimeS
}

// Filter returns the Pareto-efficient subset of points: those not dominated
// by any other point. The result is sorted by increasing power (and thus
// non-increasing time). Duplicate operating points are collapsed to one.
func Filter(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]Point(nil), points...)
	// Sort by power ascending, time ascending as tiebreak.
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].PowerW != sorted[j].PowerW {
			return sorted[i].PowerW < sorted[j].PowerW
		}
		return sorted[i].TimeS < sorted[j].TimeS
	})
	var out []Point
	bestTime := 0.0
	for _, p := range sorted {
		if len(out) == 0 {
			out = append(out, p)
			bestTime = p.TimeS
			continue
		}
		last := out[len(out)-1]
		if p.PowerW == last.PowerW {
			continue // same power, worse-or-equal time (sort order)
		}
		if p.TimeS >= bestTime {
			continue // dominated: more power, no faster
		}
		out = append(out, p)
		bestTime = p.TimeS
	}
	return out
}

// cross computes the z-component of (b−a) × (c−a) in the (power, time)
// plane. Negative means the path a→b→c turns clockwise.
func cross(a, b, c Point) float64 {
	return (b.PowerW-a.PowerW)*(c.TimeS-a.TimeS) - (b.TimeS-a.TimeS)*(c.PowerW-a.PowerW)
}

// ConvexFrontier returns the convex Pareto frontier: the vertices of the
// lower convex hull of the Pareto-efficient points, sorted by increasing
// power. Linear interpolation between consecutive returned points is a
// convex, non-increasing, piecewise-linear time-vs-power function lying on
// or below every input point — exactly the structure the LP's continuous
// configuration mixing needs.
func ConvexFrontier(points []Point) []Point {
	pf := Filter(points)
	if len(pf) <= 2 {
		return pf
	}
	// Andrew's monotone chain, lower hull. pf is already sorted by power
	// with strictly decreasing time.
	hull := make([]Point, 0, len(pf))
	for _, p := range pf {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull
}

// InterpolateTime evaluates the piecewise-linear frontier at powerW:
// the minimum task time achievable at that average power by convexly mixing
// neighboring frontier configurations. Outside the frontier's power range it
// clamps to the nearest endpoint (below minimum power the task is simply
// infeasible at that budget; callers check Feasible).
func InterpolateTime(frontier []Point, powerW float64) float64 {
	if len(frontier) == 0 {
		return 0
	}
	if powerW <= frontier[0].PowerW {
		return frontier[0].TimeS
	}
	last := frontier[len(frontier)-1]
	if powerW >= last.PowerW {
		return last.TimeS
	}
	for i := 1; i < len(frontier); i++ {
		a, b := frontier[i-1], frontier[i]
		if powerW <= b.PowerW {
			t := (powerW - a.PowerW) / (b.PowerW - a.PowerW)
			return a.TimeS + t*(b.TimeS-a.TimeS)
		}
	}
	return last.TimeS
}

// Feasible reports whether the frontier has any configuration fitting under
// the power cap.
func Feasible(frontier []Point, capW float64) bool {
	return len(frontier) > 0 && frontier[0].PowerW <= capW
}

// BestUnderCap returns the frontier point with the lowest time whose power
// does not exceed capW, and ok=false when none fits. This is the discrete
// selection rule used when rounding LP solutions and inside Conductor's
// configuration selection.
func BestUnderCap(frontier []Point, capW float64) (Point, bool) {
	best := Point{}
	ok := false
	for _, p := range frontier {
		if p.PowerW <= capW {
			best = p // frontier sorted by power asc, time desc ⇒ last fit is fastest
			ok = true
		}
	}
	return best, ok
}

// NearestToMix returns the frontier point closest (by power) to the target
// average power, used for the paper's discrete rounding: "the discrete case
// is rounded by selecting the configuration closest to the optimal point on
// the Pareto frontier."
func NearestToMix(frontier []Point, targetPowerW float64) (Point, bool) {
	if len(frontier) == 0 {
		return Point{}, false
	}
	best := frontier[0]
	bestD := absf(best.PowerW - targetPowerW)
	for _, p := range frontier[1:] {
		d := absf(p.PowerW - targetPowerW)
		if d < bestD {
			best, bestD = p, d
		}
	}
	return best, true
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
