// Package slo turns the daemon's raw request stream into service-level
// objectives with multiwindow burn rates, the control signal the adaptive
// brownout controller consumes in place of a raw latency percentile.
//
// An objective is a target fraction of "good" requests (availability: no
// 5xx; latency: served under a threshold). The burn rate is the rate at
// which the error budget (1 − target) is being consumed, normalized so
// burn = 1 means "exactly sustainable": a 99% availability objective
// seeing 1% errors burns at 1.0, seeing 10% errors burns at 10.
//
// Each objective is measured over two sliding windows — a fast window
// (minutes) that reacts to incidents within seconds and recovers within
// minutes, and a slow window (an hour) that reports sustained erosion.
// The fast burn drives control (it feeds adapt.Signals.SLOBurn); the slow
// burn is forensic context in /healthz, /metrics, and wide events.
//
// Windows are rings of bucketed counters: a window of span S with n
// buckets holds n buckets of width S/n, each stamped with its epoch
// (bucket index since the Unix epoch). Observing into a bucket whose
// stamp is stale CASes the stamp forward and resets the counters, so the
// ring slides with no ticker goroutine and no locks — every operation is
// a handful of atomics, cheap enough to sit on the request hot path.
// Counts are monitoring-grade: a reader racing a bucket turnover can
// misattribute a single in-flight observation, never corrupt a counter.
package slo

import (
	"sync/atomic"
	"time"
)

// Config sizes the engine. Zero fields take the defaults below.
type Config struct {
	// AvailabilityTarget is the good fraction for the availability
	// objective (default 0.99). Good = not a 5xx. Deliberate backpressure
	// (429) is excluded entirely: shedding is the controller doing its
	// job, and counting it as failure would make brownout self-amplifying.
	AvailabilityTarget float64
	// LatencyTarget is the good fraction for the latency objective
	// (default 0.95); good = a non-error response under LatencyThreshold
	// (default 2s).
	LatencyTarget    float64
	LatencyThreshold time.Duration
	// FastWindow (default 5m) drives control; SlowWindow (default 1h)
	// drives reporting. Each window holds Buckets buckets (default 30).
	FastWindow time.Duration
	SlowWindow time.Duration
	Buckets    int
}

func (c Config) withDefaults() Config {
	if c.AvailabilityTarget <= 0 || c.AvailabilityTarget >= 1 {
		c.AvailabilityTarget = 0.99
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.95
	}
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = 2 * time.Second
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.Buckets <= 0 {
		c.Buckets = 30
	}
	return c
}

// window is one sliding ring of bucketed good/total counters.
type window struct {
	bucketNS int64
	n        int64
	epochs   []atomic.Int64
	good     []atomic.Uint64
	total    []atomic.Uint64
}

func newWindow(span time.Duration, buckets int) *window {
	w := &window{
		bucketNS: int64(span) / int64(buckets),
		n:        int64(buckets),
		epochs:   make([]atomic.Int64, buckets),
		good:     make([]atomic.Uint64, buckets),
		total:    make([]atomic.Uint64, buckets),
	}
	if w.bucketNS <= 0 {
		w.bucketNS = 1
	}
	// Epoch 0 is a real epoch for t near the Unix epoch (tests use small
	// times); stamp buckets with an impossible epoch so they read empty.
	for i := range w.epochs {
		w.epochs[i].Store(-1)
	}
	return w
}

// slot rotates the bucket for epoch e into the current epoch if its stamp
// is stale, and returns its index.
func (w *window) slot(e int64) int64 {
	i := e % w.n
	for {
		old := w.epochs[i].Load()
		if old == e {
			return i
		}
		if w.epochs[i].CompareAndSwap(old, e) {
			w.good[i].Store(0)
			w.total[i].Store(0)
			return i
		}
	}
}

func (w *window) observe(t time.Time, good bool) {
	i := w.slot(t.UnixNano() / w.bucketNS)
	w.total[i].Add(1)
	if good {
		w.good[i].Add(1)
	}
}

// counts sums the buckets still inside the window ending at t.
func (w *window) counts(t time.Time) (good, total uint64) {
	cur := t.UnixNano() / w.bucketNS
	oldest := cur - w.n + 1
	for i := range w.epochs {
		e := w.epochs[i].Load()
		if e < oldest || e > cur {
			continue
		}
		good += w.good[i].Load()
		total += w.total[i].Load()
	}
	return good, total
}

// Objective is one SLO measured over the fast and slow windows.
type Objective struct {
	Name   string
	Target float64
	fast   *window
	slow   *window
}

func newObjective(name string, target float64, cfg Config) *Objective {
	return &Objective{
		Name:   name,
		Target: target,
		fast:   newWindow(cfg.FastWindow, cfg.Buckets),
		slow:   newWindow(cfg.SlowWindow, cfg.Buckets),
	}
}

func (o *Objective) observe(t time.Time, good bool) {
	o.fast.observe(t, good)
	o.slow.observe(t, good)
}

// burn converts a good/total pair into a normalized burn rate:
// (bad fraction) / (error budget). Zero when the window is empty.
func (o *Objective) burn(good, total uint64) float64 {
	if total == 0 {
		return 0
	}
	bad := float64(total-good) / float64(total)
	return bad / (1 - o.Target)
}

// Burn reports the objective's fast- and slow-window burn rates at t.
func (o *Objective) Burn(t time.Time) (fast, slow float64) {
	fg, ft := o.fast.counts(t)
	sg, st := o.slow.counts(t)
	return o.burn(fg, ft), o.burn(sg, st)
}

// ObjectiveStatus is one objective's snapshot for /healthz and wide
// events.
type ObjectiveStatus struct {
	Name      string  `json:"name"`
	Target    float64 `json:"target"`
	FastGood  uint64  `json:"fast_good"`
	FastTotal uint64  `json:"fast_total"`
	SlowGood  uint64  `json:"slow_good"`
	SlowTotal uint64  `json:"slow_total"`
	FastBurn  float64 `json:"fast_burn"`
	SlowBurn  float64 `json:"slow_burn"`
}

// Status snapshots the objective at t.
func (o *Objective) Status(t time.Time) ObjectiveStatus {
	fg, ft := o.fast.counts(t)
	sg, st := o.slow.counts(t)
	return ObjectiveStatus{
		Name:      o.Name,
		Target:    o.Target,
		FastGood:  fg,
		FastTotal: ft,
		SlowGood:  sg,
		SlowTotal: st,
		FastBurn:  o.burn(fg, ft),
		SlowBurn:  o.burn(sg, st),
	}
}

// Engine holds the daemon's two request objectives.
type Engine struct {
	cfg          Config
	Availability *Objective
	Latency      *Objective
}

// New builds an engine from cfg (zero fields defaulted).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		cfg:          cfg,
		Availability: newObjective("availability", cfg.AvailabilityTarget, cfg),
		Latency:      newObjective("latency", cfg.LatencyTarget, cfg),
	}
}

// LatencyThreshold reports the configured good-latency bound.
func (e *Engine) LatencyThreshold() time.Duration { return e.cfg.LatencyThreshold }

// Observe classifies one finished request into both objectives.
// Availability sees every non-429 request (good = not 5xx); latency sees
// every successfully served request (good = under the threshold), so a
// fast 500 cannot launder the latency objective.
func (e *Engine) Observe(t time.Time, status int, dur time.Duration) {
	if status == 429 {
		return
	}
	ok := status < 500
	e.Availability.observe(t, ok)
	if ok {
		e.Latency.observe(t, dur <= e.cfg.LatencyThreshold)
	}
}

// ControlBurn is the scalar control feed: the worst fast-window burn
// across objectives, plus the fast-window sample count backing it (so the
// controller can tell "no data" from "no errors").
func (e *Engine) ControlBurn(t time.Time) (burn float64, samples uint64) {
	for _, o := range []*Objective{e.Availability, e.Latency} {
		g, tot := o.fast.counts(t)
		if b := o.burn(g, tot); b > burn {
			burn = b
		}
		samples += tot
	}
	return burn, samples
}

// Status snapshots every objective at t, availability first.
func (e *Engine) Status(t time.Time) []ObjectiveStatus {
	return []ObjectiveStatus{e.Availability.Status(t), e.Latency.Status(t)}
}
