package slo

import (
	"math"
	"testing"
	"time"
)

// win returns a 100s window of 10 buckets (10s each) for boundary tests.
func win() *window { return newWindow(100*time.Second, 10) }

func at(s float64) time.Time { return time.Unix(0, int64(s*float64(time.Second))) }

// TestWindowBoundaries drives the sliding ring across bucket and window
// edges with a deterministic clock.
func TestWindowBoundaries(t *testing.T) {
	cases := []struct {
		name     string
		observe  []float64 // observation times (seconds); even index good, odd bad
		query    float64   // query time (seconds)
		wantGood uint64
		wantTot  uint64
	}{
		{"empty", nil, 50, 0, 0},
		{"single in current bucket", []float64{5}, 5, 1, 1},
		{"exactly on bucket edge lands in the new bucket", []float64{10}, 10, 1, 1},
		{"all inside window", []float64{1, 11, 21, 31}, 35, 2, 4},
		{"oldest bucket still included at span-1", []float64{0}, 99, 1, 1},
		{"oldest bucket expires when its epoch leaves the ring", []float64{0}, 100, 0, 0},
		{"partial expiry keeps newer buckets", []float64{5, 55, 95}, 105, 1, 2},
		{"same bucket accumulates", []float64{42, 43, 44.9}, 45, 2, 3},
		{"query before any data", []float64{50}, 20, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := win()
			for i, s := range tc.observe {
				w.observe(at(s), i%2 == 0)
			}
			good, tot := w.counts(at(tc.query))
			if good != tc.wantGood || tot != tc.wantTot {
				t.Fatalf("counts = (%d, %d), want (%d, %d)", good, tot, tc.wantGood, tc.wantTot)
			}
		})
	}
}

// TestWindowBucketReuse checks that a bucket slot is reset, not
// accumulated, when its epoch comes around again a full window later.
func TestWindowBucketReuse(t *testing.T) {
	w := win()
	w.observe(at(5), true)
	w.observe(at(5), true)
	// 100s later the same slot (epoch 0 -> epoch 10) is reused.
	w.observe(at(105), false)
	good, tot := w.counts(at(105))
	if good != 0 || tot != 1 {
		t.Fatalf("counts after slot reuse = (%d, %d), want (0, 1)", good, tot)
	}
}

func TestBurnMath(t *testing.T) {
	o := newObjective("avail", 0.99, Config{FastWindow: 100 * time.Second, SlowWindow: 1000 * time.Second, Buckets: 10}.withDefaults())
	cases := []struct {
		name string
		good int
		bad  int
		want float64
	}{
		{"empty window burns nothing", 0, 0, 0},
		{"all good", 100, 0, 0},
		{"burn exactly at budget", 99, 1, 1},
		{"10x budget", 90, 10, 10},
		{"everything failing saturates at 1/budget", 0, 50, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := o.burn(uint64(tc.good), uint64(tc.good+tc.bad))
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("burn = %g, want %g", got, tc.want)
			}
		})
	}
}

// TestBurnAcrossWindowBoundary checks the fast window forgets an incident
// while the slow window still reports it.
func TestBurnAcrossWindowBoundary(t *testing.T) {
	cfg := Config{
		AvailabilityTarget: 0.99,
		FastWindow:         100 * time.Second,
		SlowWindow:         1000 * time.Second,
		Buckets:            10,
	}
	o := newObjective("avail", cfg.AvailabilityTarget, cfg.withDefaults())
	for i := 0; i < 10; i++ {
		o.observe(at(float64(i)), false) // 10 failures in the first 10s
	}
	fast, slow := o.Burn(at(50))
	if math.Abs(fast-100) > 1e-6 || math.Abs(slow-100) > 1e-6 {
		t.Fatalf("mid-incident burn = (%g, %g), want (100, 100)", fast, slow)
	}
	// 200s in: the incident has left the 100s fast window entirely but
	// sits in the 1000s slow window; add successes so both have samples.
	for i := 150; i < 160; i++ {
		o.observe(at(float64(i)), true)
	}
	fast, slow = o.Burn(at(200))
	if fast != 0 {
		t.Fatalf("fast burn after incident left window = %g, want 0", fast)
	}
	if math.Abs(slow-50) > 1e-6 { // 10 bad of 20 total → 0.5/0.01
		t.Fatalf("slow burn = %g, want 50", slow)
	}
}

func TestEngineClassification(t *testing.T) {
	e := New(Config{
		AvailabilityTarget: 0.99,
		LatencyTarget:      0.9,
		LatencyThreshold:   100 * time.Millisecond,
		FastWindow:         100 * time.Second,
		SlowWindow:         1000 * time.Second,
		Buckets:            10,
	})
	now := at(10)
	e.Observe(now, 200, 50*time.Millisecond)  // good everywhere
	e.Observe(now, 200, 500*time.Millisecond) // slow success
	e.Observe(now, 500, 1*time.Millisecond)   // fast failure: bad avail, excluded from latency
	e.Observe(now, 429, 1*time.Millisecond)   // shed: excluded everywhere

	as := e.Availability.Status(now)
	if as.FastTotal != 3 || as.FastGood != 2 {
		t.Fatalf("availability = %d/%d, want 2/3", as.FastGood, as.FastTotal)
	}
	ls := e.Latency.Status(now)
	if ls.FastTotal != 2 || ls.FastGood != 1 {
		t.Fatalf("latency = %d/%d, want 1/2", ls.FastGood, ls.FastTotal)
	}

	burn, samples := e.ControlBurn(now)
	if samples != 5 {
		t.Fatalf("ControlBurn samples = %d, want 5", samples)
	}
	// latency: 1 bad of 2 with 10% budget → burn 5; availability: 1 bad
	// of 3 with 1% budget → burn 100/3 ≈ 33.3. Max wins.
	if math.Abs(burn-100.0/3) > 1e-9 {
		t.Fatalf("ControlBurn = %g, want %g", burn, 100.0/3)
	}
}

func TestEngineDefaults(t *testing.T) {
	e := New(Config{})
	if e.Availability.Target != 0.99 || e.Latency.Target != 0.95 {
		t.Fatalf("default targets = %g, %g", e.Availability.Target, e.Latency.Target)
	}
	if e.LatencyThreshold() != 2*time.Second {
		t.Fatalf("default threshold = %v", e.LatencyThreshold())
	}
	st := e.Status(time.Now())
	if len(st) != 2 || st[0].Name != "availability" || st[1].Name != "latency" {
		t.Fatalf("Status = %+v", st)
	}
}

func TestEngineConcurrent(t *testing.T) {
	e := New(Config{FastWindow: time.Second, SlowWindow: 10 * time.Second, Buckets: 4})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			base := time.Now()
			for i := 0; i < 500; i++ {
				e.Observe(base.Add(time.Duration(i)*time.Millisecond), 200+(i%2)*300, time.Millisecond)
				if i%31 == 0 {
					e.ControlBurn(base.Add(time.Duration(i) * time.Millisecond))
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
