package dag

import "fmt"

// IterationSlice extracts the subgraph of one application iteration as a
// standalone Graph: the opening Pcontrol (or Init) vertex becomes the
// slice's Init, the closing Pcontrol (or Finalize) becomes its Finalize,
// and only tasks belonging to the iteration are retained.
//
// The paper's benchmarks were instrumented with MPI_Pcontrol at iteration
// boundaries precisely "to simplify LP data processing" (Sec. 5.2): because
// a Pcontrol boundary is a global synchronization point in these workloads,
// the job-level LP decomposes exactly into per-iteration LPs whose
// makespans add up, keeping each solve at a tractable size.
//
// TaskMap maps the slice's task IDs back to the original graph's.
type IterationSlice struct {
	Graph   *Graph
	TaskMap []TaskID // slice task ID → original task ID
}

// SliceIteration extracts iteration iter (use -1 for the prologue before
// the first Pcontrol).
func SliceIteration(g *Graph, iter int) (*IterationSlice, error) {
	vmap := make(map[VertexID]VertexID)
	sub := &Graph{NumRanks: g.NumRanks}

	addVertex := func(orig Vertex, kind VertexKind) VertexID {
		id := VertexID(len(sub.Vertices))
		nv := orig
		nv.ID = id
		nv.Kind = kind
		sub.Vertices = append(sub.Vertices, nv)
		vmap[orig.ID] = id
		return id
	}

	// Locate the opening and closing boundary vertices.
	var open, close_ *Vertex
	for i := range g.Vertices {
		v := &g.Vertices[i]
		switch {
		case iter == -1 && v.Kind == VInit:
			open = v
		case v.IterBoundary && v.Iteration == iter:
			open = v
		}
		if close_ == nil {
			if v.IterBoundary && v.Iteration == iter+1 {
				close_ = v
			}
		}
	}
	if close_ == nil {
		for i := range g.Vertices {
			if g.Vertices[i].Kind == VFinalize {
				close_ = &g.Vertices[i]
			}
		}
	}
	if open == nil || close_ == nil {
		return nil, fmt.Errorf("dag: iteration %d not found", iter)
	}
	addVertex(*open, VInit)

	// Interior vertices of this iteration, in original order (preserves
	// topological compatibility since builder IDs increase along program
	// order).
	for i := range g.Vertices {
		v := &g.Vertices[i]
		if v.ID == open.ID || v.ID == close_.ID {
			continue
		}
		if v.Iteration == iter && !v.IterBoundary && v.Kind != VInit && v.Kind != VFinalize {
			addVertex(*v, v.Kind)
		}
	}
	addVertex(*close_, VFinalize)

	var taskMap []TaskID
	for _, t := range g.Tasks {
		if t.Iteration != iter {
			continue
		}
		src, okS := vmap[t.Src]
		dst, okD := vmap[t.Dst]
		if !okS || !okD {
			return nil, fmt.Errorf("dag: task %d of iteration %d crosses the slice boundary", t.ID, iter)
		}
		nt := t
		nt.ID = TaskID(len(sub.Tasks))
		nt.Src, nt.Dst = src, dst
		sub.Tasks = append(sub.Tasks, nt)
		taskMap = append(taskMap, t.ID)
	}
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("dag: slicing iteration %d: %w", iter, err)
	}
	return &IterationSlice{Graph: sub, TaskMap: taskMap}, nil
}

// SliceAll returns every iteration slice from -1 (prologue) through
// g.Iterations(), skipping empty slices (no tasks).
func SliceAll(g *Graph) ([]*IterationSlice, error) {
	var out []*IterationSlice
	for iter := -1; iter <= g.Iterations(); iter++ {
		s, err := SliceIteration(g, iter)
		if err != nil {
			return nil, err
		}
		if len(s.Graph.Tasks) == 0 {
			continue
		}
		out = append(out, s)
	}
	return out, nil
}
