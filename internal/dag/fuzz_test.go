package dag

import (
	"fmt"
	"testing"

	"powercap/internal/machine"
)

// buildFromBytes interprets prog as a small MPI program and replays it on a
// Builder. Send/Recv matching is tracked in a slice (deterministic order),
// and every pending send is drained before Finalize, so each byte string
// maps to exactly one well-formed graph.
func buildFromBytes(prog []byte) *Graph {
	if len(prog) < 2 {
		return nil
	}
	nr := 2 + int(prog[0])%3 // 2..4 ranks
	b := NewBuilder(nr)
	sh := machine.DefaultShape()
	type ps struct{ src, dst int }
	var pend []ps

	limit := len(prog)
	if limit > 200 {
		limit = 200
	}
	for i := 1; i < limit; i++ {
		op := prog[i]
		r := int(op>>4) % nr
		switch op % 4 {
		case 0:
			b.Compute(r, float64(op%16)*0.01, sh, fmt.Sprintf("c%d", op%3))
		case 1:
			b.Collective("")
		case 2:
			dst := (r + 1 + int(op>>2)%(nr-1)) % nr
			b.Isend(r, dst, int(op)*64)
			pend = append(pend, ps{r, dst})
		case 3:
			if len(pend) > 0 {
				p := pend[0]
				pend = pend[1:]
				b.Recv(p.dst, p.src)
			}
		}
	}
	for _, p := range pend {
		b.Recv(p.dst, p.src)
	}
	return b.Finalize()
}

// FuzzDigest checks, for every builder-generated graph: it validates, its
// canonical digest is deterministic, and the digest is sensitive to content
// changes (work, labels) — the properties the schedule cache's content
// addressing rests on.
func FuzzDigest(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0x10, 0x21, 0x05})
	f.Add([]byte{2, 0x12, 0x06, 0x07, 0x33, 0x0b, 0x42})
	f.Add([]byte{7, 0xfe, 0x22, 0x23, 0x01, 0x80, 0x91, 0xa2, 0xb3})

	f.Fuzz(func(t *testing.T, prog []byte) {
		g := buildFromBytes(prog)
		if g == nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("builder produced invalid graph: %v", err)
		}
		d1 := Digest(g)
		if d2 := Digest(g); d2 != d1 {
			t.Fatal("digest is not deterministic")
		}
		if len(g.Tasks) > 0 {
			g.Tasks[0].Work += 1
			if Digest(g) == d1 {
				t.Fatal("digest insensitive to task work")
			}
			g.Tasks[0].Work -= 1
		}
		if len(g.Vertices) > 0 {
			g.Vertices[0].Label += "x"
			if Digest(g) == d1 {
				t.Fatal("digest insensitive to vertex label")
			}
		}
	})
}
