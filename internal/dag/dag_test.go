package dag

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"powercap/internal/machine"
)

func simpleShape() machine.Shape { return machine.DefaultShape() }

func TestBuilderSimpleCollectiveProgram(t *testing.T) {
	b := NewBuilder(2)
	b.Compute(0, 1.0, simpleShape(), "work")
	b.Compute(1, 1.5, simpleShape(), "work")
	b.Collective("allreduce")
	b.Compute(0, 0.5, simpleShape(), "work")
	b.Compute(1, 0.5, simpleShape(), "work")
	g := b.Finalize()

	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vertices: Init, collective, Finalize = 3.
	if len(g.Vertices) != 3 {
		t.Fatalf("got %d vertices, want 3", len(g.Vertices))
	}
	// Tasks: 2 into collective, 2 into finalize.
	if len(g.Tasks) != 4 {
		t.Fatalf("got %d tasks, want 4", len(g.Tasks))
	}
	for _, task := range g.Tasks {
		if task.Kind != Compute {
			t.Fatalf("unexpected non-compute task %v", task)
		}
	}
}

func TestBuilderMergesConsecutiveCompute(t *testing.T) {
	b := NewBuilder(1)
	b.Compute(0, 1.0, simpleShape(), "a")
	b.Compute(0, 2.0, simpleShape(), "b")
	g := b.Finalize()
	if len(g.Tasks) != 1 {
		t.Fatalf("got %d tasks, want 1 (merged)", len(g.Tasks))
	}
	if g.Tasks[0].Work != 3.0 {
		t.Fatalf("merged work = %v, want 3", g.Tasks[0].Work)
	}
	if g.Tasks[0].Class != "a" {
		t.Fatalf("merged class = %q, want first class", g.Tasks[0].Class)
	}
}

func TestBuilderPointToPoint(t *testing.T) {
	// Figure 2's program: r0 computes, Isends to r1, computes, Waits,
	// computes; r1 computes, Recvs, computes.
	b := NewBuilder(2)
	b.Compute(0, 1.0, simpleShape(), "A1")
	b.Isend(0, 1, 1<<20)
	b.Compute(0, 1.0, simpleShape(), "A2")
	b.Wait(0)
	b.Compute(0, 1.0, simpleShape(), "A3")
	b.Compute(1, 2.0, simpleShape(), "A4")
	b.Recv(1, 0)
	b.Compute(1, 1.0, simpleShape(), "A5")
	g := b.Finalize()

	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vertices: Init, Isend, Wait, Recv, Finalize = 5.
	if len(g.Vertices) != 5 {
		t.Fatalf("got %d vertices, want 5", len(g.Vertices))
	}
	msgs := 0
	for _, task := range g.Tasks {
		if task.Kind == Message {
			msgs++
			if task.FixedDur != MessageDuration(1<<20) {
				t.Fatalf("message duration %v, want %v", task.FixedDur, MessageDuration(1<<20))
			}
			if task.Bytes != 1<<20 {
				t.Fatalf("message bytes = %d", task.Bytes)
			}
		}
	}
	if msgs != 1 {
		t.Fatalf("got %d messages, want 1", msgs)
	}
	// Compute tasks: A1, A2, A3 on r0; A4, A5 on r1 = 5.
	if len(g.ComputeTasks()) != 5 {
		t.Fatalf("got %d compute tasks, want 5", len(g.ComputeTasks()))
	}
}

func TestBuilderRecvWithoutSendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unmatched Recv")
		}
	}()
	b := NewBuilder(2)
	b.Recv(1, 0)
}

func TestBuilderUnmatchedSendPanicsAtFinalize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unmatched send at Finalize")
		}
	}()
	b := NewBuilder(2)
	b.Isend(0, 1, 100)
	b.Finalize()
}

func TestBuilderSendToSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for self-send")
		}
	}()
	b := NewBuilder(2)
	b.Send(0, 0, 10)
}

func TestBuilderMessageMatchingIsFIFO(t *testing.T) {
	// Two sends 0→1; receives must match in order (non-overtaking).
	b := NewBuilder(2)
	s1 := b.Isend(0, 1, 100)
	s2 := b.Isend(0, 1, 200)
	r1 := b.Recv(1, 0)
	r2 := b.Recv(1, 0)
	g := b.Finalize()
	var m1, m2 *Task
	for i := range g.Tasks {
		task := &g.Tasks[i]
		if task.Kind != Message {
			continue
		}
		if task.Dst == r1 {
			m1 = task
		}
		if task.Dst == r2 {
			m2 = task
		}
	}
	if m1 == nil || m2 == nil {
		t.Fatal("missing message edges")
	}
	if m1.Src != s1 || m1.Bytes != 100 {
		t.Fatalf("first recv matched %v (%d bytes), want first send", m1.Src, m1.Bytes)
	}
	if m2.Src != s2 || m2.Bytes != 200 {
		t.Fatalf("second recv matched %v (%d bytes), want second send", m2.Src, m2.Bytes)
	}
}

func TestPcontrolIterations(t *testing.T) {
	b := NewBuilder(2)
	for iter := 0; iter < 3; iter++ {
		b.Pcontrol()
		b.Compute(0, 1, simpleShape(), "step")
		b.Compute(1, 1, simpleShape(), "step")
		b.Collective("reduce")
	}
	g := b.Finalize()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Iterations() != 2 {
		t.Fatalf("Iterations() = %d, want 2", g.Iterations())
	}
	// Tasks after the first Pcontrol belong to iteration 0, etc.
	counts := map[int]int{}
	for _, task := range g.Tasks {
		counts[task.Iteration]++
	}
	for iter := 0; iter <= 2; iter++ {
		if counts[iter] == 0 {
			t.Fatalf("no tasks in iteration %d: %v", iter, counts)
		}
	}
}

func TestSliceIteration(t *testing.T) {
	b := NewBuilder(2)
	b.Compute(0, 0.1, simpleShape(), "setup")
	b.Compute(1, 0.1, simpleShape(), "setup")
	for iter := 0; iter < 3; iter++ {
		b.Pcontrol()
		b.Compute(0, float64(iter+1), simpleShape(), "step")
		b.Compute(1, float64(iter+1), simpleShape(), "step")
		b.Collective("reduce")
		b.Compute(0, 0.5, simpleShape(), "post")
		b.Compute(1, 0.5, simpleShape(), "post")
	}
	g := b.Finalize()

	s, err := SliceIteration(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Iteration 1: 2 "step" + 2 "post" compute tasks.
	if len(s.Graph.Tasks) != 4 {
		t.Fatalf("slice has %d tasks, want 4", len(s.Graph.Tasks))
	}
	for i, task := range s.Graph.Tasks {
		orig := g.Task(s.TaskMap[i])
		if task.Work != orig.Work || task.Class != orig.Class {
			t.Fatalf("task map mismatch at %d: %+v vs %+v", i, task, orig)
		}
		if task.Class == "step" && task.Work != 2 {
			t.Fatalf("iteration 1 step work = %v, want 2", task.Work)
		}
	}

	// Prologue slice: the two setup tasks.
	pro, err := SliceIteration(g, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pro.Graph.Tasks) != 2 {
		t.Fatalf("prologue has %d tasks, want 2", len(pro.Graph.Tasks))
	}

	all, err := SliceAll(g)
	if err != nil {
		t.Fatal(err)
	}
	// Prologue + 3 iterations.
	if len(all) != 4 {
		t.Fatalf("SliceAll returned %d slices, want 4", len(all))
	}
	total := 0
	for _, sl := range all {
		total += len(sl.Graph.Tasks)
	}
	if total != len(g.Tasks) {
		t.Fatalf("slices cover %d tasks, graph has %d", total, len(g.Tasks))
	}
}

func TestSliceLastIterationEndsAtFinalize(t *testing.T) {
	b := NewBuilder(1)
	b.Pcontrol()
	b.Compute(0, 1, simpleShape(), "only")
	g := b.Finalize()
	s, err := SliceIteration(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Graph.Tasks) != 1 {
		t.Fatalf("got %d tasks, want 1", len(s.Graph.Tasks))
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	b := NewBuilder(3)
	b.Compute(0, 1, simpleShape(), "w")
	b.Send(0, 1, 10)
	b.Recv(1, 0)
	b.Compute(1, 1, simpleShape(), "w")
	b.Send(1, 2, 10)
	b.Recv(2, 1)
	g := b.Finalize()
	order, err := g.TopoVertices()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[VertexID]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, task := range g.Tasks {
		if pos[task.Src] >= pos[task.Dst] {
			t.Fatalf("topo order violates edge %v→%v", task.Src, task.Dst)
		}
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	g := &Graph{NumRanks: 1}
	g.Vertices = []Vertex{
		{ID: 0, Kind: VInit, Rank: AllRanks},
		{ID: 1, Kind: VCollective, Rank: AllRanks},
		{ID: 2, Kind: VFinalize, Rank: AllRanks},
	}
	g.Tasks = []Task{
		{ID: 0, Kind: Compute, Rank: 0, Src: 0, Dst: 1},
		{ID: 1, Kind: Compute, Rank: 0, Src: 1, Dst: 0}, // back edge
		{ID: 2, Kind: Compute, Rank: 0, Src: 1, Dst: 2},
	}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestValidateCatchesSelfLoopAndBadRank(t *testing.T) {
	g := &Graph{NumRanks: 1}
	g.Vertices = []Vertex{
		{ID: 0, Kind: VInit, Rank: AllRanks},
		{ID: 1, Kind: VFinalize, Rank: AllRanks},
	}
	g.Tasks = []Task{{ID: 0, Kind: Compute, Rank: 0, Src: 0, Dst: 0}}
	if err := g.Validate(); err == nil {
		t.Fatal("expected self-loop error")
	}
	g.Tasks = []Task{{ID: 0, Kind: Compute, Rank: 5, Src: 0, Dst: 1}}
	if err := g.Validate(); err == nil {
		t.Fatal("expected bad-rank error")
	}
}

// TestPropertyRandomProgramsValid builds random well-formed programs and
// checks the resulting graphs always validate and slice cleanly.
func TestPropertyRandomProgramsValid(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr := 2 + rng.Intn(4)
		b := NewBuilder(nr)
		iters := 1 + rng.Intn(4)
		for it := 0; it < iters; it++ {
			b.Pcontrol()
			for r := 0; r < nr; r++ {
				b.Compute(r, rng.Float64(), simpleShape(), "step")
			}
			// Random ring of sends then receives (deadlock-free since the
			// builder is declarative, not an actual execution).
			if rng.Intn(2) == 0 {
				for r := 0; r < nr; r++ {
					b.Isend(r, (r+1)%nr, 1024)
				}
				for r := 0; r < nr; r++ {
					b.Recv(r, (r-1+nr)%nr)
				}
			} else {
				b.Collective("sync")
			}
		}
		g := b.Finalize()
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		slices, err := SliceAll(g)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		total := 0
		for _, s := range slices {
			total += len(s.Graph.Tasks)
		}
		return total == len(g.Tasks)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
