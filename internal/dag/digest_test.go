package dag

import (
	"testing"

	"powercap/internal/machine"
)

// digestGraph builds a small two-rank graph for digest sensitivity tests.
func digestGraph() *Graph {
	b := NewBuilder(2)
	b.Compute(0, 1.0, machine.DefaultShape(), "a")
	b.Compute(1, 2.0, machine.DefaultShape(), "b")
	b.Collective("allreduce")
	b.Compute(0, 0.5, machine.DefaultShape(), "a")
	b.Compute(1, 0.5, machine.DefaultShape(), "b")
	return b.Finalize()
}

func TestDigestDeterministic(t *testing.T) {
	a, b := digestGraph(), digestGraph()
	da, db := Digest(a), Digest(b)
	if da != db {
		t.Fatalf("identical graphs hash differently: %x vs %x", da, db)
	}
	if Digest(a) != da {
		t.Fatal("digest of the same graph value is not stable")
	}
}

// TestDigestSensitivity mutates each field family the LP depends on and
// asserts the digest moves: a cache keyed by this digest must never serve a
// schedule for a graph whose LP would differ.
func TestDigestSensitivity(t *testing.T) {
	base := Digest(digestGraph())
	mutations := map[string]func(*Graph){
		"work":           func(g *Graph) { g.Tasks[0].Work *= 1.0000001 },
		"shape-serial":   func(g *Graph) { g.Tasks[0].Shape.SerialFrac += 1e-9 },
		"shape-mem":      func(g *Graph) { g.Tasks[0].Shape.MemFrac += 1e-9 },
		"shape-sat":      func(g *Graph) { g.Tasks[0].Shape.MemSatThreads++ },
		"shape-cont":     func(g *Graph) { g.Tasks[0].Shape.ContentionCoef += 1e-9 },
		"shape-intens":   func(g *Graph) { g.Tasks[0].Shape.Intensity -= 1e-9 },
		"class":          func(g *Graph) { g.Tasks[0].Class = "c" },
		"rank":           func(g *Graph) { g.Tasks[0].Rank = 1 },
		"iteration":      func(g *Graph) { g.Tasks[0].Iteration++ },
		"msg-fixeddur":   func(g *Graph) { g.Tasks[len(g.Tasks)-1].FixedDur += 1e-9 },
		"vertex-kind":    func(g *Graph) { g.Vertices[2].Kind = VRecv },
		"vertex-bound":   func(g *Graph) { g.Vertices[2].IterBoundary = !g.Vertices[2].IterBoundary },
		"vertex-iter":    func(g *Graph) { g.Vertices[2].Iteration++ },
		"numranks":       func(g *Graph) { g.NumRanks++ },
		"label":          func(g *Graph) { g.Vertices[0].Label += "x" },
		"negative-zero":  func(g *Graph) { g.Tasks[0].Work = 0.0; g.Tasks[1].Work = negZero() },
		"edge-endpoints": func(g *Graph) { g.Tasks[0].Src, g.Tasks[0].Dst = g.Tasks[0].Dst, g.Tasks[0].Src },
	}
	seen := map[[32]byte]string{}
	for name, mutate := range mutations {
		g := digestGraph()
		mutate(g)
		d := Digest(g)
		if d == base {
			t.Errorf("mutation %q did not change the digest", name)
		}
		if prev, dup := seen[d]; dup {
			t.Errorf("mutations %q and %q collide", name, prev)
		}
		seen[d] = name
	}
}

// negZero returns -0.0 without tripping vet's literal checks.
func negZero() float64 {
	z := 0.0
	return -z
}

// TestDigestLabelBoundaries guards the length-prefix framing: moving a byte
// across a field boundary must not alias.
func TestDigestLabelBoundaries(t *testing.T) {
	a, b := digestGraph(), digestGraph()
	a.Vertices[0].Label, a.Vertices[1].Label = "ab", ""
	b.Vertices[0].Label, b.Vertices[1].Label = "a", "b"
	if Digest(a) == Digest(b) {
		t.Fatal("label framing aliases across vertex boundary")
	}
}
