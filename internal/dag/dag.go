// Package dag models hybrid MPI + OpenMP applications as the directed
// acyclic graphs the paper's formulations consume (Sec. 3.1, Fig. 2):
// vertices correspond to MPI function calls and edges correspond either to
// computation tasks between two consecutive MPI calls on the same process
// (tunable via DVFS + thread count) or to message transmissions between
// processes (fixed duration, a linear function of message size).
//
// Graphs are constructed with a Builder whose methods mirror the MPI calls
// of a traced program (Compute, Collective, Send/Recv, Isend/Wait,
// Pcontrol), so workload generators read like the programs they stand in
// for.
package dag

import (
	"context"
	"fmt"

	"powercap/internal/machine"
	"powercap/internal/obs"
)

// VertexID indexes a vertex within its Graph.
type VertexID int

// TaskID indexes a task (edge) within its Graph.
type TaskID int

// VertexKind classifies the MPI call a vertex represents.
type VertexKind int

// Vertex kinds.
const (
	VInit VertexKind = iota
	VFinalize
	VCollective
	VSend
	VIsend
	VRecv
	VWait
	VPcontrol
)

// String names the vertex kind like the MPI call it stands for.
func (k VertexKind) String() string {
	switch k {
	case VInit:
		return "Init"
	case VFinalize:
		return "Finalize"
	case VCollective:
		return "Collective"
	case VSend:
		return "Send"
	case VIsend:
		return "Isend"
	case VRecv:
		return "Recv"
	case VWait:
		return "Wait"
	case VPcontrol:
		return "Pcontrol"
	default:
		return fmt.Sprintf("VertexKind(%d)", int(k))
	}
}

// Vertex is an MPI call event. Collective (and Init/Finalize) vertices are
// shared by every rank and carry Rank = AllRanks.
type Vertex struct {
	ID   VertexID
	Kind VertexKind
	// Rank owning the call, or AllRanks for global synchronization points.
	Rank int
	// Iteration is the application iteration (delimited by Pcontrol calls)
	// the vertex belongs to; -1 before the first Pcontrol.
	Iteration int
	// IterBoundary marks Pcontrol vertices, which delimit the
	// per-iteration subproblems the LP decomposes over.
	IterBoundary bool
	Label        string
}

// AllRanks is the Rank value of globally shared vertices.
const AllRanks = -1

// TaskKind distinguishes the two edge types of the application DAG.
type TaskKind int

// Task kinds.
const (
	// Compute is an OpenMP region between two MPI calls on one rank; its
	// duration and power depend on the chosen configuration.
	Compute TaskKind = iota
	// Message is a point-to-point transmission between two ranks; its
	// duration is fixed (α + β·bytes) and it draws no socket power (NIC
	// and switch power are outside the socket-level RAPL domain the
	// paper constrains).
	Message
)

// String names the task kind.
func (k TaskKind) String() string {
	if k == Compute {
		return "compute"
	}
	return "message"
}

// Task is a DAG edge.
type Task struct {
	ID   TaskID
	Kind TaskKind
	// Rank executing a compute task, or the sending rank of a message.
	Rank int
	Src  VertexID
	Dst  VertexID

	// Compute fields.
	Work  float64       // seconds at one thread, max frequency
	Shape machine.Shape // response surface of this task
	// Class groups recurring tasks of the same code region; Conductor's
	// configuration exploration profiles per class (Sec. 4.2), and the
	// LP shares Pareto frontiers within a class.
	Class string
	// Iteration the task belongs to (-1 before the first Pcontrol).
	Iteration int

	// Message fields.
	Bytes    int
	FixedDur float64
}

// Graph is the application DAG.
type Graph struct {
	NumRanks int
	Vertices []Vertex
	Tasks    []Task

	// adjacency caches, built lazily by Freeze/ensureAdj.
	out [][]TaskID
	in  [][]TaskID
}

// Vertex returns the vertex with the given id.
func (g *Graph) Vertex(id VertexID) *Vertex { return &g.Vertices[id] }

// Task returns the task with the given id.
func (g *Graph) Task(id TaskID) *Task { return &g.Tasks[id] }

// ensureAdj (re)builds adjacency lists when the graph has grown.
func (g *Graph) ensureAdj() {
	if len(g.out) == len(g.Vertices) && g.countAdj() == len(g.Tasks) {
		return
	}
	g.out = make([][]TaskID, len(g.Vertices))
	g.in = make([][]TaskID, len(g.Vertices))
	for _, t := range g.Tasks {
		g.out[t.Src] = append(g.out[t.Src], t.ID)
		g.in[t.Dst] = append(g.in[t.Dst], t.ID)
	}
}

func (g *Graph) countAdj() int {
	n := 0
	for _, l := range g.out {
		n += len(l)
	}
	return n
}

// TasksFrom lists tasks whose source is v.
func (g *Graph) TasksFrom(v VertexID) []TaskID {
	g.ensureAdj()
	return g.out[v]
}

// TasksInto lists tasks whose destination is v.
func (g *Graph) TasksInto(v VertexID) []TaskID {
	g.ensureAdj()
	return g.in[v]
}

// TopoVertices returns the vertices in a topological order, or an error if
// the graph contains a cycle (which would indicate a builder bug: message
// matching and per-rank chaining can only create forward edges).
func (g *Graph) TopoVertices() ([]VertexID, error) {
	g.ensureAdj()
	indeg := make([]int, len(g.Vertices))
	for _, t := range g.Tasks {
		indeg[t.Dst]++
	}
	queue := make([]VertexID, 0, len(g.Vertices))
	for i := range g.Vertices {
		if indeg[i] == 0 {
			queue = append(queue, VertexID(i))
		}
	}
	order := make([]VertexID, 0, len(g.Vertices))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, tid := range g.out[v] {
			d := g.Tasks[tid].Dst
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != len(g.Vertices) {
		return nil, fmt.Errorf("dag: cycle detected (%d of %d vertices ordered)", len(order), len(g.Vertices))
	}
	return order, nil
}

// Validate checks structural invariants: edge endpoints in range, compute
// tasks owned by a valid rank, message endpoints distinct, message edges
// connecting Send/Isend to Recv vertices of different ranks with exact
// one-to-one matching, acyclicity, and exactly one Init and one Finalize
// vertex.
func (g *Graph) Validate() error {
	return g.ValidateCtx(context.Background())
}

// ValidateCtx is Validate recorded as a dag.validate obs span under ctx.
func (g *Graph) ValidateCtx(ctx context.Context) error {
	_, span := obs.Start(ctx, "dag.validate")
	defer span.End()
	span.SetAttr("vertices", len(g.Vertices))
	span.SetAttr("tasks", len(g.Tasks))
	inits, finals := 0, 0
	for _, v := range g.Vertices {
		switch v.Kind {
		case VInit:
			inits++
		case VFinalize:
			finals++
		}
		if v.Rank != AllRanks && (v.Rank < 0 || v.Rank >= g.NumRanks) {
			return fmt.Errorf("dag: vertex %d has invalid rank %d", v.ID, v.Rank)
		}
	}
	if inits != 1 || finals != 1 {
		return fmt.Errorf("dag: want exactly one Init and one Finalize, got %d/%d", inits, finals)
	}
	for _, t := range g.Tasks {
		if int(t.Src) < 0 || int(t.Src) >= len(g.Vertices) || int(t.Dst) < 0 || int(t.Dst) >= len(g.Vertices) {
			return fmt.Errorf("dag: task %d has out-of-range endpoints", t.ID)
		}
		if t.Src == t.Dst {
			return fmt.Errorf("dag: task %d is a self-loop on vertex %d", t.ID, t.Src)
		}
		switch t.Kind {
		case Compute:
			if t.Rank < 0 || t.Rank >= g.NumRanks {
				return fmt.Errorf("dag: compute task %d has invalid rank %d", t.ID, t.Rank)
			}
			if t.Work < 0 {
				return fmt.Errorf("dag: compute task %d has negative work", t.ID)
			}
		case Message:
			if t.FixedDur < 0 {
				return fmt.Errorf("dag: message task %d has negative duration", t.ID)
			}
			if t.Rank < 0 || t.Rank >= g.NumRanks {
				return fmt.Errorf("dag: message task %d has invalid sender rank %d", t.ID, t.Rank)
			}
			src, dst := g.Vertices[t.Src], g.Vertices[t.Dst]
			if src.Kind != VSend && src.Kind != VIsend {
				return fmt.Errorf("dag: message task %d leaves a %s vertex, want Send/Isend", t.ID, src.Kind)
			}
			if dst.Kind != VRecv {
				return fmt.Errorf("dag: message task %d enters a %s vertex, want Recv", t.ID, dst.Kind)
			}
			if src.Rank == dst.Rank {
				return fmt.Errorf("dag: message task %d is a self-send on rank %d", t.ID, src.Rank)
			}
		}
	}
	// Message matching: every send vertex carries exactly one outgoing
	// message edge and every recv vertex exactly one incoming edge. An
	// unmatched send (or an edge attached to the wrong call kind) marks a
	// truncated or hand-mangled trace that would otherwise surface deep in
	// the problem build.
	msgOut := make(map[VertexID]int)
	msgIn := make(map[VertexID]int)
	for _, t := range g.Tasks {
		if t.Kind == Message {
			msgOut[t.Src]++
			msgIn[t.Dst]++
		}
	}
	for _, v := range g.Vertices {
		switch v.Kind {
		case VSend, VIsend:
			if msgOut[v.ID] != 1 {
				return fmt.Errorf("dag: %s vertex %d has %d outgoing message edges, want 1 (unmatched send)", v.Kind, v.ID, msgOut[v.ID])
			}
		case VRecv:
			if msgIn[v.ID] != 1 {
				return fmt.Errorf("dag: Recv vertex %d has %d incoming message edges, want 1 (unmatched recv)", v.ID, msgIn[v.ID])
			}
		}
	}
	if _, err := g.TopoVertices(); err != nil {
		return err
	}
	return nil
}

// ComputeTasks returns the IDs of all compute tasks, the objects the LP
// assigns configurations to.
func (g *Graph) ComputeTasks() []TaskID {
	var out []TaskID
	for _, t := range g.Tasks {
		if t.Kind == Compute {
			out = append(out, t.ID)
		}
	}
	return out
}

// Iterations returns the largest iteration index present, or -1 when the
// graph has no Pcontrol boundaries.
func (g *Graph) Iterations() int {
	max := -1
	for _, t := range g.Tasks {
		if t.Iteration > max {
			max = t.Iteration
		}
	}
	return max
}
