package dag

import (
	"fmt"

	"powercap/internal/machine"
)

// Default point-to-point message cost parameters, an InfiniBand-QDR-like
// α–β model (Sec. 3.1: message edges are "weighted by a linear function of
// message size").
const (
	// MsgAlphaS is the per-message latency in seconds.
	MsgAlphaS = 2e-6
	// MsgBetaSPerByte is the inverse bandwidth in seconds per byte
	// (≈ 3.2 GB/s effective).
	MsgBetaSPerByte = 1.0 / 3.2e9
)

// MessageDuration is the α + β·bytes cost model for point-to-point edges.
func MessageDuration(bytes int) float64 {
	return MsgAlphaS + MsgBetaSPerByte*float64(bytes)
}

// Builder incrementally constructs a Graph by replaying an MPI + OpenMP
// program's call sequence. Each rank accumulates compute work between MPI
// calls; issuing an MPI call materializes the pending compute as an edge
// into the call's vertex.
type Builder struct {
	g *Graph

	cur []VertexID // each rank's most recent vertex

	pendingWork  []float64
	pendingShape []machine.Shape
	pendingClass []string
	hasPending   []bool

	// unmatched sends per (src,dst) pair, in issue order.
	pendingSends map[[2]int][]VertexID
	// sendBytes records the payload size declared at Isend/Send time,
	// consumed when the matching Recv creates the message edge.
	sendBytes map[VertexID]int

	iteration int
	finalized bool
	seq       int // per-builder label sequence
}

// NewBuilder starts a graph for numRanks MPI processes with a shared Init
// vertex (the paper's Eq. 2 pins it to time zero).
func NewBuilder(numRanks int) *Builder {
	if numRanks < 1 {
		panic("dag: builder needs at least one rank")
	}
	g := &Graph{NumRanks: numRanks}
	init := Vertex{ID: 0, Kind: VInit, Rank: AllRanks, Iteration: -1, Label: "MPI_Init"}
	g.Vertices = append(g.Vertices, init)
	b := &Builder{
		g:            g,
		cur:          make([]VertexID, numRanks),
		pendingWork:  make([]float64, numRanks),
		pendingShape: make([]machine.Shape, numRanks),
		pendingClass: make([]string, numRanks),
		hasPending:   make([]bool, numRanks),
		pendingSends: make(map[[2]int][]VertexID),
		sendBytes:    make(map[VertexID]int),
		iteration:    -1,
	}
	for r := range b.cur {
		b.cur[r] = 0
	}
	return b
}

func (b *Builder) checkRank(rank int) {
	if rank < 0 || rank >= b.g.NumRanks {
		panic(fmt.Sprintf("dag: rank %d out of range [0,%d)", rank, b.g.NumRanks))
	}
	if b.finalized {
		panic("dag: builder already finalized")
	}
}

// Compute accumulates an OpenMP region on rank: work seconds (single
// thread, max frequency) with the given response shape, labeled with a task
// class for profiling. Consecutive Compute calls merge into a single task,
// matching the paper's task definition ("sections of computation between
// consecutive MPI calls").
func (b *Builder) Compute(rank int, work float64, shape machine.Shape, class string) {
	b.checkRank(rank)
	if work < 0 {
		panic("dag: negative work")
	}
	if b.hasPending[rank] {
		// Merge: keep the first shape/class, accumulate work. Real traces
		// cannot observe sub-task structure between two MPI calls either.
		b.pendingWork[rank] += work
		return
	}
	b.hasPending[rank] = true
	b.pendingWork[rank] = work
	b.pendingShape[rank] = shape
	b.pendingClass[rank] = class
}

// newVertex appends a vertex and returns its id.
func (b *Builder) newVertex(kind VertexKind, rank int, label string) VertexID {
	id := VertexID(len(b.g.Vertices))
	b.g.Vertices = append(b.g.Vertices, Vertex{
		ID: id, Kind: kind, Rank: rank, Iteration: b.iteration, Label: label,
	})
	return id
}

// flushCompute adds the pending compute edge (possibly zero work) from the
// rank's current vertex into dst.
func (b *Builder) flushCompute(rank int, dst VertexID) {
	work := 0.0
	shape := machine.DefaultShape()
	class := "idle"
	if b.hasPending[rank] {
		work = b.pendingWork[rank]
		shape = b.pendingShape[rank]
		class = b.pendingClass[rank]
		b.hasPending[rank] = false
	}
	id := TaskID(len(b.g.Tasks))
	b.g.Tasks = append(b.g.Tasks, Task{
		ID: id, Kind: Compute, Rank: rank,
		Src: b.cur[rank], Dst: dst,
		Work: work, Shape: shape, Class: class,
		Iteration: b.iteration,
	})
	b.cur[rank] = dst
}

// Collective synchronizes all ranks at a single shared vertex (e.g.
// MPI_Allreduce or MPI_Barrier). Every rank's pending compute becomes an
// edge into the shared vertex; per Eq. 4, all post-collective tasks then
// share that source vertex and start simultaneously.
func (b *Builder) Collective(label string) VertexID {
	if b.finalized {
		panic("dag: builder already finalized")
	}
	if label == "" {
		label = fmt.Sprintf("collective#%d", b.seq)
	}
	b.seq++
	v := b.newVertex(VCollective, AllRanks, label)
	for r := 0; r < b.g.NumRanks; r++ {
		b.flushCompute(r, v)
	}
	return v
}

// Pcontrol marks an iteration boundary, implemented as a collective vertex
// flagged IterBoundary. The benchmarks in the paper were modified to call
// MPI_Pcontrol at iteration boundaries "to simplify LP data processing and
// help Conductor identify application phases" (Sec. 5.2); our workload
// proxies do the same.
func (b *Builder) Pcontrol() VertexID {
	v := b.Collective(fmt.Sprintf("MPI_Pcontrol(iter=%d)", b.iteration+1))
	b.g.Vertices[v].Kind = VPcontrol
	b.g.Vertices[v].IterBoundary = true
	b.iteration++
	b.g.Vertices[v].Iteration = b.iteration
	return v
}

// Isend issues a non-blocking send from rank to dst of the given size; the
// sender proceeds immediately. The message edge is attached when the
// matching Recv is issued. Returns the Isend vertex.
func (b *Builder) Isend(rank, dst, bytes int) VertexID {
	b.checkRank(rank)
	b.checkRank(dst)
	if rank == dst {
		panic("dag: send to self")
	}
	v := b.newVertex(VIsend, rank, fmt.Sprintf("Isend(%d→%d,%dB)", rank, dst, bytes))
	b.flushCompute(rank, v)
	key := [2]int{rank, dst}
	b.pendingSends[key] = append(b.pendingSends[key], v)
	b.sendBytes[v] = bytes
	return v
}

// Send is a blocking standard-mode send. With eager delivery (the message
// sizes in our workloads are small relative to buffer space), the sender
// may proceed once the message is handed to the transport, so Send is
// modeled as Isend; the matching Recv still waits for transmission.
func (b *Builder) Send(rank, dst, bytes int) VertexID {
	v := b.Isend(rank, dst, bytes)
	b.g.Vertices[v].Kind = VSend
	return v
}

// Recv issues a blocking receive on rank from src, matching the earliest
// unmatched send in program order (MPI non-overtaking semantics for a
// single communicator and tag). A message edge with duration α + β·bytes
// connects the send vertex to the Recv vertex.
func (b *Builder) Recv(rank, src int) VertexID {
	b.checkRank(rank)
	b.checkRank(src)
	key := [2]int{src, rank}
	sends := b.pendingSends[key]
	if len(sends) == 0 {
		panic(fmt.Sprintf("dag: Recv(%d←%d) has no matching send", rank, src))
	}
	sv := sends[0]
	b.pendingSends[key] = sends[1:]
	bytes := b.sendBytes[sv]

	v := b.newVertex(VRecv, rank, fmt.Sprintf("Recv(%d←%d,%dB)", rank, src, bytes))
	b.flushCompute(rank, v)
	id := TaskID(len(b.g.Tasks))
	b.g.Tasks = append(b.g.Tasks, Task{
		ID: id, Kind: Message, Rank: src,
		Src: sv, Dst: v,
		Bytes: bytes, FixedDur: MessageDuration(bytes),
		Iteration: b.iteration,
	})
	return v
}

// Wait issues an MPI_Wait on rank. With the eager-send model the request is
// already complete, so Wait is a local ordering vertex: it ends the
// preceding compute region, as any MPI call does.
func (b *Builder) Wait(rank int) VertexID {
	b.checkRank(rank)
	v := b.newVertex(VWait, rank, fmt.Sprintf("Wait(r%d)", rank))
	b.flushCompute(rank, v)
	return v
}

// Finalize closes the graph with a shared MPI_Finalize vertex — the vM
// whose time the LP minimizes (Eq. 1) — and returns the finished Graph.
// Unmatched sends are a program error and panic.
func (b *Builder) Finalize() *Graph {
	if b.finalized {
		panic("dag: builder already finalized")
	}
	for key, sends := range b.pendingSends {
		if len(sends) > 0 {
			panic(fmt.Sprintf("dag: %d unmatched send(s) from rank %d to %d", len(sends), key[0], key[1]))
		}
	}
	v := b.newVertex(VFinalize, AllRanks, "MPI_Finalize")
	for r := 0; r < b.g.NumRanks; r++ {
		b.flushCompute(r, v)
	}
	b.finalized = true
	return b.g
}
