package dag

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
)

// Content-addressed graph hashing. The schedule cache in internal/service
// keys finished schedules by "what the LP actually sees": the full DAG —
// vertices with their kinds, ranks, iteration marks and Pcontrol
// boundaries, and tasks with their endpoints, work, response shapes and
// message durations. Two byte-identical digests therefore denote graphs
// whose LPs are identical row for row (the event order derives from the
// initial schedule, which is a pure function of the graph and the machine
// model; the model is hashed separately into the cache key).
//
// The serialization is deliberately positional and exhaustive: every field
// of every vertex and task is written in ID order with fixed-width
// little-endian encoding, lengths prefix all variable-size data (labels,
// class names), and floats are hashed by IEEE-754 bit pattern so -0.0 vs
// 0.0 or NaN payload differences cannot alias. Nothing is derived or
// canonicalized beyond ID order, which the Graph representation already
// guarantees (Validate enforces dense, ordered IDs via the trace codec,
// and the builder allocates them sequentially).

// Digest returns the canonical SHA-256 of the graph's content. Graphs with
// equal digests produce identical fixed-vertex-order LPs under the same
// machine model and efficiency scales.
func Digest(g *Graph) [sha256.Size]byte {
	h := sha256.New()
	hashU64(h, uint64(g.NumRanks))

	hashU64(h, uint64(len(g.Vertices)))
	for _, v := range g.Vertices {
		hashU64(h, uint64(v.ID))
		hashU64(h, uint64(v.Kind))
		hashI64(h, int64(v.Rank))
		hashI64(h, int64(v.Iteration))
		hashBool(h, v.IterBoundary)
		hashString(h, v.Label)
	}

	hashU64(h, uint64(len(g.Tasks)))
	for _, t := range g.Tasks {
		hashU64(h, uint64(t.ID))
		hashU64(h, uint64(t.Kind))
		hashI64(h, int64(t.Rank))
		hashU64(h, uint64(t.Src))
		hashU64(h, uint64(t.Dst))
		hashI64(h, int64(t.Iteration))
		hashF64(h, t.Work)
		hashF64(h, t.Shape.SerialFrac)
		hashF64(h, t.Shape.MemFrac)
		hashI64(h, int64(t.Shape.MemSatThreads))
		hashF64(h, t.Shape.ContentionCoef)
		hashF64(h, t.Shape.Intensity)
		hashString(h, t.Class)
		hashI64(h, int64(t.Bytes))
		hashF64(h, t.FixedDur)
	}

	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func hashU64(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

func hashI64(h hash.Hash, v int64) { hashU64(h, uint64(v)) }

func hashF64(h hash.Hash, v float64) { hashU64(h, math.Float64bits(v)) }

func hashBool(h hash.Hash, v bool) {
	if v {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
}

func hashString(h hash.Hash, s string) {
	hashU64(h, uint64(len(s)))
	h.Write([]byte(s))
}
