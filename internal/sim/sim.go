// Package sim executes application DAGs: given an operating point for every
// compute task, it derives the full execution timeline (task starts/ends,
// vertex times, makespan) and the job's instantaneous power profile.
//
// This is the reproduction's stand-in for running benchmarks on the paper's
// Cab cluster: policies (Static, Conductor, LP replay) choose operating
// points, and the simulator tells them how long the application takes and
// whether the job-level power constraint was respected. Timing follows the
// same event semantics as the LP (Sec. 3.1): a task starts at its source
// vertex's time (Eq. 4), a vertex fires when all incoming tasks complete
// (Eq. 3), and MPI_Init is time zero (Eq. 2).
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"powercap/internal/dag"
	"powercap/internal/obs"
)

// TaskPoint is the operating point chosen for one task: its duration and
// the socket power drawn while it runs. Message tasks take their fixed
// duration and zero socket power regardless of what callers put here; use
// Points to allocate a correctly sized slice.
type TaskPoint struct {
	Duration float64
	PowerW   float64
}

// Points allocates one TaskPoint per task of g, with message durations
// prefilled from the graph. Callers fill in the compute entries.
func Points(g *dag.Graph) []TaskPoint {
	pts := make([]TaskPoint, len(g.Tasks))
	for i, t := range g.Tasks {
		if t.Kind == dag.Message {
			pts[i] = TaskPoint{Duration: t.FixedDur, PowerW: 0}
		}
	}
	return pts
}

// SlackPolicy determines the socket power attributed to a rank while it
// waits between the end of one task and the start of its next.
type SlackPolicy int

const (
	// SlackHoldsTaskPower matches the LP's assumption (Sec. 3.3): "slack
	// power is assumed equal to its corresponding task power", with tasks
	// preceding their slack.
	SlackHoldsTaskPower SlackPolicy = iota
	// SlackIdle charges a fixed idle power during slack, as the flow ILP
	// does ("the ILP formulation assigns a specific power consumption to
	// all slack based on observed slack power", Appendix).
	SlackIdle
)

// Result is the outcome of evaluating a DAG under a task-point assignment.
type Result struct {
	// Makespan is the Finalize vertex time (the LP objective vM).
	Makespan float64
	// Start and End give each task's interval; message tasks included.
	Start, End []float64
	// VertexTime gives each vertex's firing time.
	VertexTime []float64
	// PeakPowerW is the maximum instantaneous job power over the run.
	PeakPowerW float64
	// EventPower lists (time, totalPower) at every task start/end event,
	// sorted by time — the resolution at which the LP constrains power.
	EventPower []PowerSample
}

// PowerSample is one point of the job power profile.
type PowerSample struct {
	Time   float64
	PowerW float64
}

// Evaluate runs the DAG with the given per-task operating points.
// idlePowerW is used only under SlackIdle (per-rank idle draw). The points
// slice must have one entry per task in g.
func Evaluate(g *dag.Graph, points []TaskPoint, slack SlackPolicy, idlePowerW float64) (*Result, error) {
	return EvaluateCtx(context.Background(), g, points, slack, idlePowerW)
}

// EvaluateCtx is Evaluate recorded as a sim.evaluate obs span under ctx
// (parentage only; the simulation itself is not cancelable — it is a single
// linear sweep).
func EvaluateCtx(ctx context.Context, g *dag.Graph, points []TaskPoint, slack SlackPolicy, idlePowerW float64) (*Result, error) {
	_, span := obs.Start(ctx, "sim.evaluate")
	defer span.End()
	span.SetAttr("tasks", len(g.Tasks))
	if len(points) != len(g.Tasks) {
		return nil, fmt.Errorf("sim: %d points for %d tasks", len(points), len(g.Tasks))
	}
	order, err := g.TopoVertices()
	if err != nil {
		return nil, err
	}

	res := &Result{
		Start:      make([]float64, len(g.Tasks)),
		End:        make([]float64, len(g.Tasks)),
		VertexTime: make([]float64, len(g.Vertices)),
	}

	// Vertex times by forward sweep: a task starts at its source vertex's
	// time; a vertex fires when all incoming tasks have completed.
	for _, vid := range order {
		vt := res.VertexTime[vid]
		for _, tid := range g.TasksFrom(vid) {
			t := g.Task(tid)
			d := points[tid].Duration
			if t.Kind == dag.Message {
				d = t.FixedDur
			}
			if d < 0 {
				return nil, fmt.Errorf("sim: task %d has negative duration %v", tid, d)
			}
			res.Start[tid] = vt
			res.End[tid] = vt + d
			if res.End[tid] > res.VertexTime[t.Dst] {
				res.VertexTime[t.Dst] = res.End[tid]
			}
		}
	}
	for i := range g.Vertices {
		if g.Vertices[i].Kind == dag.VFinalize {
			res.Makespan = res.VertexTime[i]
		}
	}

	res.EventPower = powerProfile(g, res, points, slack, idlePowerW)
	for _, s := range res.EventPower {
		if s.PowerW > res.PeakPowerW {
			res.PeakPowerW = s.PowerW
		}
	}
	return res, nil
}

// powerProfile computes total job power at every task start/end event. Each
// rank contributes a piecewise-constant power: its running task's power
// while the task executes, then (policy-dependent) slack power until its
// next task starts.
func powerProfile(g *dag.Graph, res *Result, points []TaskPoint, slack SlackPolicy, idlePowerW float64) []PowerSample {
	type seg struct{ t0, t1, p float64 }
	perRank := make([][]seg, g.NumRanks)

	// Collect each rank's compute tasks ordered by start time.
	byRank := make([][]dag.TaskID, g.NumRanks)
	for _, t := range g.Tasks {
		if t.Kind == dag.Compute {
			byRank[t.Rank] = append(byRank[t.Rank], t.ID)
		}
	}
	for r := range byRank {
		ids := byRank[r]
		sort.Slice(ids, func(i, j int) bool {
			if res.Start[ids[i]] != res.Start[ids[j]] {
				return res.Start[ids[i]] < res.Start[ids[j]]
			}
			return ids[i] < ids[j]
		})
		for k, tid := range ids {
			start, end := res.Start[tid], res.End[tid]
			next := res.Makespan
			if k+1 < len(ids) {
				next = res.Start[ids[k+1]]
			}
			p := points[tid].PowerW
			perRank[r] = append(perRank[r], seg{start, end, p})
			if next > end {
				sp := p
				if slack == SlackIdle {
					sp = idlePowerW
				}
				perRank[r] = append(perRank[r], seg{end, next, sp})
			}
		}
	}

	// Event times: every task boundary.
	events := make([]float64, 0, 2*len(g.Tasks))
	for i := range g.Tasks {
		events = append(events, res.Start[i], res.End[i])
	}
	sort.Float64s(events)
	events = dedupFloats(events)

	// Sweep events in time order with one advancing cursor per rank;
	// segments are sorted and contiguous, so this is O(events + segments).
	// At each event we report the power of the interval beginning there
	// (events are exactly where power levels change).
	cursor := make([]int, g.NumRanks)
	samples := make([]PowerSample, 0, len(events))
	for _, ev := range events {
		total := 0.0
		for r := 0; r < g.NumRanks; r++ {
			segs := perRank[r]
			for cursor[r]+1 < len(segs) && segs[cursor[r]].t1 <= ev {
				cursor[r]++
			}
			if len(segs) > 0 {
				s := segs[cursor[r]]
				if ev >= s.t0 && (ev < s.t1 || cursor[r] == len(segs)-1) {
					total += s.p
				}
			}
		}
		samples = append(samples, PowerSample{Time: ev, PowerW: total})
	}
	return samples
}

func dedupFloats(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// MaxCapViolation returns the largest amount by which the job power profile
// exceeds capW (0 when the cap is respected everywhere).
func (r *Result) MaxCapViolation(capW float64) float64 {
	v := 0.0
	for _, s := range r.EventPower {
		if ex := s.PowerW - capW; ex > v {
			v = ex
		}
	}
	return v
}

// AvgPower integrates the piecewise-constant event power over the makespan
// and returns the time-weighted average job power.
func (r *Result) AvgPower() float64 {
	if len(r.EventPower) == 0 || r.Makespan <= 0 {
		return 0
	}
	total := 0.0
	for i := 0; i < len(r.EventPower); i++ {
		t0 := r.EventPower[i].Time
		t1 := r.Makespan
		if i+1 < len(r.EventPower) {
			t1 = r.EventPower[i+1].Time
		}
		if t1 > t0 {
			total += r.EventPower[i].PowerW * (t1 - t0)
		}
	}
	return total / r.Makespan
}

// CriticalPath returns the task IDs of one longest path through the DAG
// under the evaluated durations, from Init to Finalize. Used by Conductor's
// critical-path estimation and by diagnostics.
func (r *Result) CriticalPath(g *dag.Graph) []dag.TaskID {
	// Walk backwards from Finalize greedily choosing the in-task whose end
	// equals the vertex time.
	var fin dag.VertexID
	for i := range g.Vertices {
		if g.Vertices[i].Kind == dag.VFinalize {
			fin = g.Vertices[i].ID
		}
	}
	var path []dag.TaskID
	cur := fin
	const eps = 1e-12
	for {
		in := g.TasksInto(cur)
		if len(in) == 0 {
			break
		}
		chosen := dag.TaskID(-1)
		for _, tid := range in {
			if math.Abs(r.End[tid]-r.VertexTime[cur]) <= eps+1e-9*r.VertexTime[cur] {
				chosen = tid
				break
			}
		}
		if chosen < 0 {
			// Slack everywhere into this vertex: follow the latest-ending.
			best := in[0]
			for _, tid := range in[1:] {
				if r.End[tid] > r.End[best] {
					best = tid
				}
			}
			chosen = best
		}
		path = append(path, chosen)
		cur = g.Task(chosen).Src
	}
	// Reverse into forward order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
