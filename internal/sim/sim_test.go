package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"powercap/internal/dag"
	"powercap/internal/machine"
)

func shape() machine.Shape { return machine.DefaultShape() }

// twoRankCollective builds: Init → (1s, 2s) → collective → (1s, 1s) → Fin.
func twoRankCollective(t *testing.T) (*dag.Graph, []TaskPoint) {
	t.Helper()
	b := dag.NewBuilder(2)
	b.Compute(0, 1, shape(), "a")
	b.Compute(1, 2, shape(), "a")
	b.Collective("sync")
	b.Compute(0, 1, shape(), "b")
	b.Compute(1, 1, shape(), "b")
	g := b.Finalize()
	pts := Points(g)
	durs := []float64{1, 2, 1, 1}
	pows := []float64{30, 40, 35, 45}
	for i := range g.Tasks {
		pts[i] = TaskPoint{Duration: durs[i], PowerW: pows[i]}
	}
	return g, pts
}

func TestEvaluateCollectiveTiming(t *testing.T) {
	g, pts := twoRankCollective(t)
	res, err := Evaluate(g, pts, SlackHoldsTaskPower, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Collective fires at max(1,2)=2; second phase takes 1 → makespan 3.
	if math.Abs(res.Makespan-3) > 1e-12 {
		t.Fatalf("makespan = %v, want 3", res.Makespan)
	}
	// Rank 0's first task ends at 1; its second starts at 2 (slack 1s).
	if res.Start[2] != 2 {
		t.Fatalf("post-collective start = %v, want 2", res.Start[2])
	}
}

func TestEvaluatePowerProfileWithSlackHold(t *testing.T) {
	g, pts := twoRankCollective(t)
	res, err := Evaluate(g, pts, SlackHoldsTaskPower, 0)
	if err != nil {
		t.Fatal(err)
	}
	// t ∈ [0,1): 30+40 = 70. t ∈ [1,2): rank0 slack holds 30 → 70.
	// t ∈ [2,3): 35+45 = 80. Peak = 80.
	if math.Abs(res.PeakPowerW-80) > 1e-9 {
		t.Fatalf("peak power = %v, want 80", res.PeakPowerW)
	}
	for _, s := range res.EventPower {
		if s.Time < 1 && math.Abs(s.PowerW-70) > 1e-9 {
			t.Fatalf("power at %v = %v, want 70", s.Time, s.PowerW)
		}
		if s.Time >= 2 && s.Time < 3 && math.Abs(s.PowerW-80) > 1e-9 {
			t.Fatalf("power at %v = %v, want 80", s.Time, s.PowerW)
		}
	}
}

func TestEvaluatePowerProfileWithSlackIdle(t *testing.T) {
	g, pts := twoRankCollective(t)
	res, err := Evaluate(g, pts, SlackIdle, 10)
	if err != nil {
		t.Fatal(err)
	}
	// t ∈ [1,2): rank0 idles at 10 → total 50.
	found := false
	for _, s := range res.EventPower {
		if s.Time >= 1 && s.Time < 2 {
			if math.Abs(s.PowerW-50) > 1e-9 {
				t.Fatalf("idle-slack power at %v = %v, want 50", s.Time, s.PowerW)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no event sample in the slack window")
	}
}

func TestEvaluateMessageTiming(t *testing.T) {
	b := dag.NewBuilder(2)
	b.Compute(0, 1, shape(), "pre")
	b.Isend(0, 1, 3_200_000) // 1ms at 3.2 GB/s
	b.Compute(1, 0.5, shape(), "pre")
	b.Recv(1, 0)
	b.Compute(1, 1, shape(), "post")
	g := b.Finalize()
	pts := Points(g)
	for i, task := range g.Tasks {
		if task.Kind == dag.Compute {
			pts[i] = TaskPoint{Duration: task.Work, PowerW: 20}
		}
	}
	res, err := Evaluate(g, pts, SlackHoldsTaskPower, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sender's Isend vertex at t=1; message takes ~1.002ms; receiver ready
	// at 0.5 → Recv fires ≈ 1.001. Post compute ends ≈ 2.001.
	msgDur := dag.MessageDuration(3_200_000)
	want := 1 + msgDur + 1
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestEvaluateRejectsWrongPointCount(t *testing.T) {
	g, _ := twoRankCollective(t)
	if _, err := Evaluate(g, nil, SlackHoldsTaskPower, 0); err == nil {
		t.Fatal("expected error for wrong point count")
	}
}

func TestEvaluateRejectsNegativeDuration(t *testing.T) {
	g, pts := twoRankCollective(t)
	pts[0].Duration = -1
	if _, err := Evaluate(g, pts, SlackHoldsTaskPower, 0); err == nil {
		t.Fatal("expected error for negative duration")
	}
}

func TestMaxCapViolationAndAvgPower(t *testing.T) {
	g, pts := twoRankCollective(t)
	res, err := Evaluate(g, pts, SlackHoldsTaskPower, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.MaxCapViolation(80); v != 0 {
		t.Fatalf("violation at cap 80 = %v, want 0", v)
	}
	if v := res.MaxCapViolation(75); math.Abs(v-5) > 1e-9 {
		t.Fatalf("violation at cap 75 = %v, want 5", v)
	}
	// Avg: 70 for t∈[0,2), 80 for t∈[2,3) → (140+80)/3.
	if got, want := res.AvgPower(), (70*2+80*1)/3.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("avg power = %v, want %v", got, want)
	}
}

func TestCriticalPath(t *testing.T) {
	g, pts := twoRankCollective(t)
	res, err := Evaluate(g, pts, SlackHoldsTaskPower, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp := res.CriticalPath(g)
	if len(cp) != 2 {
		t.Fatalf("critical path has %d tasks, want 2", len(cp))
	}
	// First leg must be rank 1's 2-second task.
	if g.Task(cp[0]).Rank != 1 || g.Task(cp[0]).Work != 2 {
		t.Fatalf("critical path starts with %+v, want rank 1's 2s task", g.Task(cp[0]))
	}
	// Path must be contiguous and end at Finalize.
	for i := 1; i < len(cp); i++ {
		if g.Task(cp[i]).Src != g.Task(cp[i-1]).Dst {
			t.Fatal("critical path not contiguous")
		}
	}
}

// TestPropertyMakespanLowerBounds checks two invariants on random graphs:
// makespan ≥ every rank's total task time (a rank can never finish before
// doing all its work) and makespan ≥ end of every task.
func TestPropertyMakespanInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr := 1 + rng.Intn(5)
		b := dag.NewBuilder(nr)
		iters := 1 + rng.Intn(3)
		for it := 0; it < iters; it++ {
			for r := 0; r < nr; r++ {
				b.Compute(r, 0.1+rng.Float64(), shape(), "w")
			}
			b.Collective("sync")
		}
		g := b.Finalize()
		pts := Points(g)
		rankWork := make([]float64, nr)
		for i, task := range g.Tasks {
			if task.Kind != dag.Compute {
				continue
			}
			d := 0.05 + rng.Float64()*2
			pts[i] = TaskPoint{Duration: d, PowerW: 10 + rng.Float64()*60}
			rankWork[task.Rank] += d
		}
		res, err := Evaluate(g, pts, SlackHoldsTaskPower, 0)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for r, w := range rankWork {
			if res.Makespan < w-1e-9 {
				t.Logf("seed %d: makespan %v < rank %d work %v", seed, res.Makespan, r, w)
				return false
			}
		}
		for i := range g.Tasks {
			if res.End[i] > res.Makespan+1e-9 {
				t.Logf("seed %d: task %d ends after makespan", seed, i)
				return false
			}
			if res.End[i] < res.Start[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPeakPowerBounds: the peak power never exceeds the sum of all
// per-rank maxima and never falls below any single sample.
func TestPropertyPeakPowerBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr := 2 + rng.Intn(4)
		b := dag.NewBuilder(nr)
		for r := 0; r < nr; r++ {
			b.Compute(r, 1, shape(), "w")
		}
		b.Collective("sync")
		for r := 0; r < nr; r++ {
			b.Compute(r, 1, shape(), "w")
		}
		g := b.Finalize()
		pts := Points(g)
		rankMax := make([]float64, nr)
		for i, task := range g.Tasks {
			p := 10 + rng.Float64()*50
			pts[i] = TaskPoint{Duration: 0.1 + rng.Float64(), PowerW: p}
			if p > rankMax[task.Rank] {
				rankMax[task.Rank] = p
			}
		}
		res, err := Evaluate(g, pts, SlackHoldsTaskPower, 0)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range rankMax {
			sum += p
		}
		if res.PeakPowerW > sum+1e-9 {
			t.Logf("seed %d: peak %v exceeds sum of rank maxima %v", seed, res.PeakPowerW, sum)
			return false
		}
		for _, s := range res.EventPower {
			if s.PowerW > res.PeakPowerW+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPointsPrefillsMessages(t *testing.T) {
	b := dag.NewBuilder(2)
	b.Send(0, 1, 1000)
	b.Recv(1, 0)
	g := b.Finalize()
	pts := Points(g)
	for i, task := range g.Tasks {
		if task.Kind == dag.Message && pts[i].Duration != task.FixedDur {
			t.Fatalf("message point not prefilled: %+v", pts[i])
		}
	}
}

func TestGanttRendering(t *testing.T) {
	g, pts := twoRankCollective(t)
	res, err := Evaluate(g, pts, SlackHoldsTaskPower, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Gantt(g, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 2 rank rows + power row.
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "r0") || !strings.HasPrefix(lines[2], "r1") {
		t.Fatalf("missing rank rows:\n%s", out)
	}
	if !strings.Contains(lines[1], "#") {
		t.Fatalf("rank row has no computation marks:\n%s", out)
	}
	if !strings.Contains(lines[3], "peak") {
		t.Fatalf("missing power row:\n%s", out)
	}
	// Rank 0 idles between 1s and 2s of a 3s span: expect slack dots in
	// the middle third of its row.
	r0 := lines[1][strings.Index(lines[1], "|")+1:]
	mid := r0[len(r0)/3 : 2*len(r0)/3]
	if !strings.Contains(mid, ".") {
		t.Fatalf("expected slack in rank 0's middle third: %q", r0)
	}
}

func TestGanttEmptyAndNarrow(t *testing.T) {
	r := &Result{}
	if out := r.Gantt(&dag.Graph{NumRanks: 1}, 5); !strings.Contains(out, "empty") {
		t.Fatalf("empty schedule not handled: %q", out)
	}
}
