package sim

import (
	"fmt"
	"sort"
	"strings"

	"powercap/internal/dag"
)

// Gantt renders an ASCII timeline of an evaluated execution: one row per
// rank, time flowing left to right, '#' for computation and '.' for slack,
// followed by the job power profile. width is the number of character
// columns for the time axis (min 20).
func (r *Result) Gantt(g *dag.Graph, width int) string {
	if width < 20 {
		width = 20
	}
	if r.Makespan <= 0 {
		return "(empty schedule)\n"
	}
	colTime := r.Makespan / float64(width)

	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 .. %.3fs  (each column %.4fs)\n", r.Makespan, colTime)

	byRank := make([][]dag.TaskID, g.NumRanks)
	for _, t := range g.Tasks {
		if t.Kind == dag.Compute {
			byRank[t.Rank] = append(byRank[t.Rank], t.ID)
		}
	}
	for rank := 0; rank < g.NumRanks; rank++ {
		ids := byRank[rank]
		sort.Slice(ids, func(i, j int) bool { return r.Start[ids[i]] < r.Start[ids[j]] })
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, tid := range ids {
			s := int(r.Start[tid] / colTime)
			e := int(r.End[tid] / colTime)
			if e >= width {
				e = width - 1
			}
			for c := s; c <= e && c < width; c++ {
				row[c] = '#'
			}
		}
		fmt.Fprintf(&b, "r%-3d |%s|\n", rank, row)
	}

	// Power profile row: quantize instantaneous power into a 0-9 scale.
	peak := r.PeakPowerW
	if peak > 0 {
		row := make([]byte, width)
		for i := range row {
			tm := (float64(i) + 0.5) * colTime
			p := r.powerAtTime(tm)
			level := int(p / peak * 9.999)
			if level < 0 {
				level = 0
			}
			if level > 9 {
				level = 9
			}
			row[i] = byte('0' + level)
		}
		fmt.Fprintf(&b, "pow  |%s|  peak %.1f W\n", row, peak)
	}
	return b.String()
}

// powerAtTime interpolates the piecewise-constant event power at time tm.
func (r *Result) powerAtTime(tm float64) float64 {
	if len(r.EventPower) == 0 {
		return 0
	}
	idx := sort.Search(len(r.EventPower), func(i int) bool { return r.EventPower[i].Time > tm }) - 1
	if idx < 0 {
		idx = 0
	}
	return r.EventPower[idx].PowerW
}
