package problem

import (
	"sort"

	"powercap/internal/dag"
	"powercap/internal/sim"
)

// Occupancy resolves which compute task occupies each rank at a given time
// of an evaluated schedule. A rank's occupancy window for a task runs from
// the task's start until the rank's next task starts (the task plus its
// slack); under the main LP's accounting the slack holds the task's power,
// so the occupying task is the one charged for the rank at that time
// (Sec. 3.3).
//
// The boundary rule — shared by the activity sets of the fixed-order LP,
// the slack-aware variant, and the realization validator — is: an event
// exactly at a window boundary belongs to the newly starting task ("tasks
// are considered active at an event if they start at or are running at the
// time of the event"). Ties between tasks starting at the same instant
// (zero-duration tasks) resolve to the highest task ID, the one actually
// about to run. An event before a rank's first task charges that first
// task.
type Occupancy struct {
	byRank [][]dag.TaskID
	start  []float64
	end    []float64
}

// NewOccupancy indexes the evaluated schedule res for occupancy lookups:
// per rank, its compute tasks sorted by (start time, task ID).
func NewOccupancy(g *dag.Graph, res *sim.Result) *Occupancy {
	o := &Occupancy{
		byRank: make([][]dag.TaskID, g.NumRanks),
		start:  res.Start,
		end:    res.End,
	}
	for _, t := range g.Tasks {
		if t.Kind == dag.Compute {
			o.byRank[t.Rank] = append(o.byRank[t.Rank], t.ID)
		}
	}
	for r := range o.byRank {
		ids := o.byRank[r]
		sort.Slice(ids, func(i, j int) bool {
			if o.start[ids[i]] != o.start[ids[j]] {
				return o.start[ids[i]] < o.start[ids[j]]
			}
			return ids[i] < ids[j]
		})
	}
	return o
}

// Tasks returns rank's compute tasks in occupancy order.
func (o *Occupancy) Tasks(rank int) []dag.TaskID { return o.byRank[rank] }

// TaskAt returns the task occupying rank at time t, applying the boundary
// rule above. ok is false only when the rank has no compute tasks.
func (o *Occupancy) TaskAt(rank int, t float64) (dag.TaskID, bool) {
	ids := o.byRank[rank]
	if len(ids) == 0 {
		return 0, false
	}
	// Last task whose start ≤ t; ties in start resolve to the later task ID
	// (sort order above puts it last among equal starts).
	k := sort.Search(len(ids), func(k int) bool { return o.start[ids[k]] > t }) - 1
	if k < 0 {
		k = 0 // event precedes the rank's first task: charge it
	}
	return ids[k], true
}

// Running reports whether task tid is still executing (as opposed to
// slacking) at time t: it has started at or before t and its execution end
// is after t, with a task starting exactly at t counting as running even
// when zero-duration.
func (o *Occupancy) Running(tid dag.TaskID, t float64) bool {
	return t < o.end[tid] || o.start[tid] == t
}
