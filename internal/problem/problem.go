// Package problem builds the canonical intermediate representation (IR) of
// one power-constrained scheduling instance — the paper's Sec. 3.3 problem
// skeleton — exactly once per (graph, machine model, efficiency scales) and
// independently of any power cap, so that every solver backend (dense LP,
// sparse revised LP, slack-aware LP, MILP branch and bound, flow ILP) and
// the realization/validation pipeline consume one shared build instead of
// each assembling a private representation.
//
// The IR carries:
//
//   - the power-unconstrained initial schedule (every task at the maximum
//     configuration) that fixes the event order and activity sets;
//   - the per-vertex activity sets R_j — which compute tasks pay power at
//     which events — derived through the shared Occupancy boundary rule;
//   - the event order: vertices sorted by initial time, ties pinned equal;
//   - per-task classification (message / fixed degenerate / tunable) with
//     each tunable task's Pareto-frontier columns (work-scaled durations
//     and configuration powers) and each degenerate task's constant draw.
//
// Everything in the IR is immutable after Build and safe to share across
// goroutines; the power cap enters only when a backend turns the IR into a
// concrete program (it shifts constraint right-hand sides, never the
// skeleton), which is what lets cap sweeps and the scheduling service reuse
// one build across every cap.
package problem

import (
	"context"
	"sort"

	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/obs"
	"powercap/internal/sim"
)

// TaskClass partitions tasks by how they enter the formulation.
type TaskClass int8

const (
	// Message tasks have a fixed duration and no socket power.
	Message TaskClass = iota
	// Fixed tasks are degenerate compute edges (zero work — a rank passing
	// straight between two MPI calls): instantaneous, drawing idle power
	// through their slack window.
	Fixed
	// Tunable tasks choose (or mix) configurations from their frontier.
	Tunable
)

// Columns are one tunable task's frontier columns: position k runs the task
// in F.Cfgs[k], taking Durs[k] seconds at F.Pts[k].PowerW watts.
type Columns struct {
	F    *Frontier
	Durs []float64 // F.Pts[k].TimeS scaled by task work
}

// IR is the shared, cap-independent problem representation.
type IR struct {
	G         *dag.Graph
	Frontiers *FrontierSet

	// Init is the power-unconstrained initial schedule fixing event order
	// and activity sets (Sec. 3.3).
	Init *sim.Result
	// Occ indexes Init for per-rank occupancy-window lookups.
	Occ *Occupancy
	// Active is the activity set R_j per vertex: the tasks charged for
	// power at that event, one per rank with compute tasks.
	Active [][]dag.TaskID
	// EventOrder is the vertices in fixed event order: sorted by initial
	// time, ties broken by vertex ID (and pinned simultaneous by Eq. 13).
	EventOrder []dag.VertexID

	// Class classifies each task; Cols is non-nil exactly for Tunable
	// tasks; FixedPowerW is the constant draw of Fixed tasks.
	Class       []TaskClass
	Cols        []*Columns
	FixedPowerW []float64
}

// Build constructs the IR for g against model and effScale. Equivalent to
// BuildWith(NewFrontierSet(model, effScale), g).
func Build(model *machine.Model, effScale []float64, g *dag.Graph) (*IR, error) {
	return BuildWith(NewFrontierSet(model, effScale), g)
}

// BuildWith constructs the IR for g, computing frontiers through fs — use
// one FrontierSet across many builds (iteration slices, multiple graphs on
// one System) to share the per-(shape, rank) frontier work.
func BuildWith(fs *FrontierSet, g *dag.Graph) (*IR, error) {
	return BuildWithCtx(context.Background(), fs, g)
}

// BuildWithCtx is BuildWith with obs span parentage: the build itself, the
// initial-schedule simulation, and any frontier constructions it triggers
// record as spans under ctx.
func BuildWithCtx(ctx context.Context, fs *FrontierSet, g *dag.Graph) (*IR, error) {
	ctx, span := obs.Start(ctx, "problem.build")
	defer span.End()
	span.SetAttr("tasks", len(g.Tasks))
	span.SetAttr("vertices", len(g.Vertices))

	init, err := initialSchedule(ctx, fs, g)
	if err != nil {
		return nil, err
	}
	ir := &IR{
		G:           g,
		Frontiers:   fs,
		Init:        init,
		Occ:         NewOccupancy(g, init),
		Class:       make([]TaskClass, len(g.Tasks)),
		Cols:        make([]*Columns, len(g.Tasks)),
		FixedPowerW: make([]float64, len(g.Tasks)),
	}

	for _, t := range g.Tasks {
		switch {
		case t.Kind == dag.Message:
			ir.Class[t.ID] = Message
		case t.Work <= 0:
			ir.Class[t.ID] = Fixed
			ir.FixedPowerW[t.ID] = fs.model.IdlePower(fs.Eff(t.Rank))
		default:
			ir.Class[t.ID] = Tunable
			f := fs.ForCtx(ctx, t.Shape, t.Rank)
			durs := make([]float64, len(f.Pts))
			for k, p := range f.Pts {
				durs[k] = p.TimeS * t.Work
			}
			ir.Cols[t.ID] = &Columns{F: f, Durs: durs}
		}
	}

	// Activity sets (Sec. 3.3): per event, the task occupying each rank.
	ir.Active = make([][]dag.TaskID, len(g.Vertices))
	for vi := range g.Vertices {
		tj := init.VertexTime[vi]
		for r := 0; r < g.NumRanks; r++ {
			if tid, ok := ir.Occ.TaskAt(r, tj); ok {
				ir.Active[vi] = append(ir.Active[vi], tid)
			}
		}
	}

	// Fixed event order (Eqs. 12–13): initial-time order, ID tiebreak.
	ir.EventOrder = make([]dag.VertexID, len(g.Vertices))
	for i := range ir.EventOrder {
		ir.EventOrder[i] = dag.VertexID(i)
	}
	sort.Slice(ir.EventOrder, func(a, b int) bool {
		ta, tb := init.VertexTime[ir.EventOrder[a]], init.VertexTime[ir.EventOrder[b]]
		if ta != tb {
			return ta < tb
		}
		return ir.EventOrder[a] < ir.EventOrder[b]
	})
	return ir, nil
}

// Simultaneous reports whether consecutive events a and b of EventOrder
// fire at the same initial time (and are therefore pinned equal, Eq. 13).
func (ir *IR) Simultaneous(a, b dag.VertexID) bool {
	return ir.Init.VertexTime[a] == ir.Init.VertexTime[b]
}

// initialSchedule evaluates the power-unconstrained schedule: every tunable
// task at the maximum configuration.
func initialSchedule(ctx context.Context, fs *FrontierSet, g *dag.Graph) (*sim.Result, error) {
	pts := sim.Points(g)
	maxCfg := fs.model.MaxConfig()
	for i, t := range g.Tasks {
		if t.Kind != dag.Compute {
			continue
		}
		pts[i] = sim.TaskPoint{
			Duration: fs.model.Duration(t.Work, t.Shape, maxCfg),
			PowerW:   fs.model.Power(t.Shape, maxCfg, fs.Eff(t.Rank)),
		}
	}
	return sim.EvaluateCtx(ctx, g, pts, sim.SlackHoldsTaskPower, 0)
}
