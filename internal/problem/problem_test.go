package problem

import (
	"testing"

	"powercap/internal/dag"
	"powercap/internal/machine"
)

func irGraph() *dag.Graph {
	sh := machine.DefaultShape()
	b := dag.NewBuilder(2)
	b.Compute(0, 0.5, sh, "phase1")
	b.Compute(1, 1.0, sh, "phase1")
	b.Collective("sync")
	b.Compute(0, 0.4, sh, "phase2")
	b.Compute(1, 0, sh, "idlehop")
	return b.Finalize()
}

func TestBuildClassifiesTasks(t *testing.T) {
	g := irGraph()
	m := machine.Default()
	ir, err := Build(m, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range g.Tasks {
		class := ir.Class[task.ID]
		switch {
		case task.Kind == dag.Message:
			if class != Message {
				t.Errorf("task %d: class %v, want Message", task.ID, class)
			}
			if ir.Cols[task.ID] != nil {
				t.Errorf("message task %d has frontier columns", task.ID)
			}
		case task.Work <= 0:
			if class != Fixed {
				t.Errorf("task %d: class %v, want Fixed", task.ID, class)
			}
			if want := m.IdlePower(1.0); ir.FixedPowerW[task.ID] != want {
				t.Errorf("task %d: fixed power %v, want idle %v", task.ID, ir.FixedPowerW[task.ID], want)
			}
		default:
			if class != Tunable {
				t.Errorf("task %d: class %v, want Tunable", task.ID, class)
			}
			cols := ir.Cols[task.ID]
			if cols == nil {
				t.Fatalf("tunable task %d missing columns", task.ID)
			}
			if len(cols.Durs) != len(cols.F.Pts) {
				t.Fatalf("task %d: %d durations for %d frontier points", task.ID, len(cols.Durs), len(cols.F.Pts))
			}
			for k, p := range cols.F.Pts {
				if want := p.TimeS * task.Work; cols.Durs[k] != want {
					t.Errorf("task %d col %d: dur %v, want %v", task.ID, k, cols.Durs[k], want)
				}
			}
		}
	}
}

func TestEventOrderSortedAndComplete(t *testing.T) {
	g := irGraph()
	ir, err := Build(machine.Default(), nil, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.EventOrder) != len(g.Vertices) {
		t.Fatalf("event order has %d vertices, graph %d", len(ir.EventOrder), len(g.Vertices))
	}
	seen := make([]bool, len(g.Vertices))
	for i, v := range ir.EventOrder {
		if seen[v] {
			t.Fatalf("vertex %d appears twice in event order", v)
		}
		seen[v] = true
		if i == 0 {
			continue
		}
		prev := ir.EventOrder[i-1]
		tp, tv := ir.Init.VertexTime[prev], ir.Init.VertexTime[v]
		if tp > tv || (tp == tv && prev > v) {
			t.Fatalf("event order not sorted at %d: vertex %d (t=%v) before %d (t=%v)", i, prev, tp, v, tv)
		}
		if (tp == tv) != ir.Simultaneous(prev, v) {
			t.Fatalf("Simultaneous(%d,%d) disagrees with times %v,%v", prev, v, tp, tv)
		}
	}
}

func TestActiveSetsMatchOccupancy(t *testing.T) {
	g := irGraph()
	ir, err := Build(machine.Default(), nil, g)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range g.Vertices {
		active := ir.Active[vi]
		if len(active) > g.NumRanks {
			t.Fatalf("vertex %d: %d active tasks for %d ranks", vi, len(active), g.NumRanks)
		}
		onRank := map[int]dag.TaskID{}
		for _, tid := range active {
			task := g.Task(tid)
			if task.Kind != dag.Compute {
				t.Fatalf("vertex %d: non-compute task %d in activity set", vi, tid)
			}
			if prev, dup := onRank[task.Rank]; dup {
				t.Fatalf("vertex %d: rank %d charged twice (tasks %d, %d)", vi, task.Rank, prev, tid)
			}
			onRank[task.Rank] = tid
			if got, ok := ir.Occ.TaskAt(task.Rank, ir.Init.VertexTime[vi]); !ok || got != tid {
				t.Fatalf("vertex %d rank %d: activity set has %d, occupancy says %d", vi, task.Rank, tid, got)
			}
		}
	}
}

// TestBuildWithSharesFrontiers: two graphs built through one FrontierSet
// share frontier pointers — the cross-build reuse SolveSweep and the
// scheduling service depend on.
func TestBuildWithSharesFrontiers(t *testing.T) {
	fs := NewFrontierSet(machine.Default(), nil)
	g1, g2 := irGraph(), irGraph()
	ir1, err := BuildWith(fs, g1)
	if err != nil {
		t.Fatal(err)
	}
	ir2, err := BuildWith(fs, g2)
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2 *Columns
	for tid := range g1.Tasks {
		if ir1.Class[tid] == Tunable {
			c1, c2 = ir1.Cols[tid], ir2.Cols[tid]
			break
		}
	}
	if c1 == nil || c2 == nil {
		t.Fatal("no tunable task found")
	}
	if c1.F != c2.F {
		t.Fatal("equal (shape, rank) classes built through one FrontierSet must share a Frontier")
	}
}

func TestFrontierNearestAndFloor(t *testing.T) {
	fs := NewFrontierSet(machine.Default(), nil)
	f := fs.For(machine.DefaultShape(), 0)
	if len(f.Pts) < 2 {
		t.Fatalf("degenerate frontier with %d points", len(f.Pts))
	}
	lo, hi := f.Pts[0].PowerW, f.Pts[len(f.Pts)-1].PowerW
	if !(lo < hi) {
		t.Fatalf("frontier not sorted by power: %v .. %v", lo, hi)
	}

	// Nearest at an exact frontier power returns that position.
	for k := range f.Pts {
		if got, ok := f.Nearest(f.Pts[k].PowerW); !ok || got != k {
			t.Fatalf("Nearest(%v) = %d,%v, want %d", f.Pts[k].PowerW, got, ok, k)
		}
	}

	// Floor never exceeds the target and clamps below the minimum.
	mid := (f.Pts[0].PowerW + f.Pts[1].PowerW) / 2
	if got, ok := f.Floor(mid); !ok || got != 0 {
		t.Fatalf("Floor(%v) = %d,%v, want 0", mid, got, ok)
	}
	if got, ok := f.Floor(lo - 5); !ok || got != 0 {
		t.Fatalf("Floor below minimum = %d,%v, want clamp to 0", got, ok)
	}
	if got, ok := f.Floor(hi + 5); !ok || got != len(f.Pts)-1 {
		t.Fatalf("Floor above maximum = %d,%v, want last point", got, ok)
	}
	for k := range f.Pts {
		got, _ := f.Floor(f.Pts[k].PowerW)
		if f.Pts[got].PowerW > f.Pts[k].PowerW+1e-9 {
			t.Fatalf("Floor(%v) chose a higher-power point %v", f.Pts[k].PowerW, f.Pts[got].PowerW)
		}
	}
}
