package problem

import (
	"testing"

	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/sim"
)

// occGraph builds a 2-rank graph whose compute tasks we re-time by hand:
//
//	rank 0: A (work 0.5) | collective | B (work 0.4)
//	rank 1: Z (work 0)   | collective | D (work 0.4)
//
// Z is a zero-work (and, once re-timed, zero-duration) task.
func occGraph(t *testing.T) (*dag.Graph, map[string]dag.TaskID) {
	t.Helper()
	sh := machine.DefaultShape()
	b := dag.NewBuilder(2)
	b.Compute(0, 0.5, sh, "A")
	b.Compute(1, 0, sh, "Z")
	b.Collective("sync")
	b.Compute(0, 0.4, sh, "B")
	b.Compute(1, 0.4, sh, "D")
	g := b.Finalize()

	named := map[string]dag.TaskID{}
	for _, task := range g.Tasks {
		if task.Kind == dag.Compute {
			named[task.Class] = task.ID
		}
	}
	for _, want := range []string{"A", "Z", "B", "D"} {
		if _, ok := named[want]; !ok {
			t.Fatalf("compute task %q not found in graph", want)
		}
	}
	return g, named
}

// TestOccupancyWindows drives TaskAt/Running through a hand-timed schedule,
// covering the shared boundary rule: an event at a window boundary belongs
// to the newly starting task, events before a rank's first task charge that
// task, zero-duration tasks tie-break to the highest (about-to-run) ID, and
// a task starting exactly at the query time counts as running.
func TestOccupancyWindows(t *testing.T) {
	g, id := occGraph(t)
	a, z, bb, d := id["A"], id["Z"], id["B"], id["D"]

	// Hand-timed: rank 0 runs A on [0,1] with slack to 2, B on [2,3].
	// Rank 1's Z is zero-duration at t=0 and D starts at the same instant
	// (the degenerate same-start tie the boundary rule must resolve).
	res := &sim.Result{
		Start: make([]float64, len(g.Tasks)),
		End:   make([]float64, len(g.Tasks)),
	}
	res.Start[a], res.End[a] = 0, 1
	res.Start[bb], res.End[bb] = 2, 3
	res.Start[z], res.End[z] = 0, 0
	res.Start[d], res.End[d] = 0, 2
	occ := NewOccupancy(g, res)

	cases := []struct {
		name string
		rank int
		t    float64
		want dag.TaskID
	}{
		{"before first task charges it", 0, -0.5, a},
		{"start boundary belongs to starting task", 0, 0, a},
		{"mid-execution", 0, 0.5, a},
		{"execution end still occupied (slack holds task)", 0, 1.0, a},
		{"slack window", 0, 1.5, a},
		{"next start boundary flips to new task", 0, 2.0, bb},
		{"mid second task", 0, 2.5, bb},
		{"after last task stays with it", 0, 10, bb},
		{"zero-duration same-start tie goes to highest ID", 1, 0, d},
		{"after the tie the running task owns the window", 1, 1.0, d},
	}
	for _, tc := range cases {
		got, ok := occ.TaskAt(tc.rank, tc.t)
		if !ok {
			t.Errorf("%s: TaskAt(%d, %v) reported no tasks", tc.name, tc.rank, tc.t)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: TaskAt(%d, %v) = task %d, want %d", tc.name, tc.rank, tc.t, got, tc.want)
		}
	}

	runningCases := []struct {
		name string
		tid  dag.TaskID
		t    float64
		want bool
	}{
		{"running at own start", a, 0, true},
		{"running mid-execution", a, 0.5, true},
		{"not running at execution end", a, 1.0, false},
		{"not running during slack", a, 1.5, false},
		{"zero-duration task runs at its instant", z, 0, true},
		{"zero-duration task not running later", z, 0.5, false},
	}
	for _, tc := range runningCases {
		if got := occ.Running(tc.tid, tc.t); got != tc.want {
			t.Errorf("%s: Running(%d, %v) = %v, want %v", tc.name, tc.tid, tc.t, got, tc.want)
		}
	}

	// Occupancy order on rank 1 must place the zero-duration task before
	// the equal-start running task (start tie broken by ID).
	r1 := occ.Tasks(1)
	if len(r1) != 2 || r1[0] != z || r1[1] != d {
		t.Fatalf("rank 1 occupancy order = %v, want [%d %d]", r1, z, d)
	}
}

// TestOccupancyEmptyRank: a rank with no compute tasks yields ok=false.
func TestOccupancyEmptyRank(t *testing.T) {
	g := &dag.Graph{NumRanks: 1}
	occ := NewOccupancy(g, &sim.Result{})
	if _, ok := occ.TaskAt(0, 0); ok {
		t.Fatal("TaskAt on a rank with no compute tasks must report ok=false")
	}
	if got := occ.Tasks(0); len(got) != 0 {
		t.Fatalf("Tasks(0) = %v, want empty", got)
	}
}
