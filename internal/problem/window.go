package problem

import (
	"sort"

	"powercap/internal/dag"
)

// Windowed problem IR. A Plan slices the fixed event order into contiguous
// core windows — a partition — each extended by an overlap of lookahead
// events. The cores are the units of commitment: the windowed solver
// (internal/core.SolveWindowed) commits the operating points of exactly the
// tasks whose source event lies in a window's core, while the lookahead
// region is re-optimized by the next window to soften boundary myopia.
//
// Two structural guarantees make a per-window LP self-contained with only
// right-hand-side coupling to its predecessors:
//
//  1. Cuts never split a simultaneous-event group (Eq. 13 pins those vertex
//     times equal, so a cut through a group would place an equality row
//     across two programs). Cut positions are restricted to strict
//     initial-time increases.
//
//  2. On monotone graphs — every task's source event positioned no later
//     than its destination event, which the builder guarantees by
//     construction — every task active at an event is owned by that
//     event's window or an earlier one. Boundary coupling is therefore
//     always "earlier window feeds constants forward", never a cycle.
//     Windowize detects non-monotone orders (possible only in hand-written
//     traces) and degrades to a single window, which is trivially exact.
//
// A Plan is immutable after Windowize and safe to share; the core solver
// caches plans by (graph digest, windows, overlap) the same way it caches
// IRs by digest. Per-window programs reuse the shared IR columns (Pareto
// frontiers, durations), so a plan adds O(events + tasks) memory, not a
// copy of the problem.
type Plan struct {
	IR *IR
	// Windows are the core partition in left-to-right order. Always at
	// least one; exactly one means the windowed solve degenerates to the
	// monolithic formulation.
	Windows []Window
	// Overlap is the lookahead depth (events) the plan was built with.
	Overlap int
	// Pos maps each vertex to its position in IR.EventOrder.
	Pos []int
	// OwnerByPos maps each event position to the index of the window whose
	// core contains it.
	OwnerByPos []int
	// Monotone reports guarantee (2) above. A non-monotone order forces a
	// single window.
	Monotone bool

	// Position-indexed task adjacency: tasks whose source (resp.
	// destination) vertex sits at event position p occupy
	// TasksBySrc[SrcStart[p]:SrcStart[p+1]] (resp. TasksByDst/DstStart).
	// These give each window its variable and constraint sets in
	// O(window size) instead of O(graph).
	TasksBySrc []dag.TaskID
	SrcStart   []int
	TasksByDst []dag.TaskID
	DstStart   []int
}

// Window is one contiguous slice of the event order: core positions
// [CoreStart, CoreEnd) — the commitment region — plus lookahead up to
// ExtEnd. Vertex-time variables exist for [CoreStart, ExtEnd);
// configuration variables for tasks whose source position lies in that
// range.
type Window struct {
	Index     int
	CoreStart int
	CoreEnd   int
	ExtEnd    int
}

// Events returns the number of core events of w.
func (w Window) Events() int { return w.CoreEnd - w.CoreStart }

// Owned reports whether event position p is committed by w.
func (w Window) Owned(p int) bool { return p >= w.CoreStart && p < w.CoreEnd }

// InRange reports whether event position p has a vertex-time variable in
// w's program (core or lookahead).
func (w Window) InRange(p int) bool { return p >= w.CoreStart && p < w.ExtEnd }

// Windowize slices the IR's event order into at most `windows` cores, each
// extended by overlapEvents of lookahead. Cut positions are restricted to
// strict initial-time increases, so fewer windows than requested may come
// back when simultaneous groups are large; windows <= 1 (or a non-monotone
// event order) yields the single-window plan.
func (ir *IR) Windowize(windows, overlapEvents int) *Plan {
	nV := len(ir.EventOrder)
	if overlapEvents < 0 {
		overlapEvents = 0
	}
	p := &Plan{
		IR:       ir,
		Overlap:  overlapEvents,
		Pos:      make([]int, nV),
		Monotone: true,
	}
	for i, v := range ir.EventOrder {
		p.Pos[v] = i
	}
	for _, t := range ir.G.Tasks {
		if p.Pos[t.Src] > p.Pos[t.Dst] {
			p.Monotone = false
			break
		}
	}
	if windows < 1 {
		windows = 1
	}
	if windows > nV {
		windows = nV
	}
	if !p.Monotone {
		windows = 1
	}

	// Allowed cut positions: strict initial-time increases only.
	var cuts []int
	if windows > 1 {
		for i := 1; i < nV; i++ {
			if !ir.Simultaneous(ir.EventOrder[i-1], ir.EventOrder[i]) {
				cuts = append(cuts, i)
			}
		}
	}

	// Place each boundary at the first allowed cut at or after its ideal
	// position; boundaries that collapse onto an earlier one are dropped.
	bounds := []int{0}
	for w := 1; w < windows; w++ {
		target := w * nV / windows
		if target <= bounds[len(bounds)-1] {
			continue
		}
		i := sort.SearchInts(cuts, target)
		if i == len(cuts) {
			break
		}
		c := cuts[i]
		if c <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, c)
	}
	bounds = append(bounds, nV)

	p.OwnerByPos = make([]int, nV)
	for i := 0; i+1 < len(bounds); i++ {
		w := Window{
			Index:     i,
			CoreStart: bounds[i],
			CoreEnd:   bounds[i+1],
			ExtEnd:    bounds[i+1] + overlapEvents,
		}
		if w.ExtEnd > nV {
			w.ExtEnd = nV
		}
		p.Windows = append(p.Windows, w)
		for pos := w.CoreStart; pos < w.CoreEnd; pos++ {
			p.OwnerByPos[pos] = i
		}
	}

	p.TasksBySrc, p.SrcStart = indexTasksBy(ir.G, p.Pos, nV, func(t *dag.Task) dag.VertexID { return t.Src })
	p.TasksByDst, p.DstStart = indexTasksBy(ir.G, p.Pos, nV, func(t *dag.Task) dag.VertexID { return t.Dst })
	return p
}

// indexTasksBy counting-sorts task IDs by the event position of one of
// their endpoints.
func indexTasksBy(g *dag.Graph, pos []int, nV int, end func(*dag.Task) dag.VertexID) ([]dag.TaskID, []int) {
	start := make([]int, nV+1)
	for i := range g.Tasks {
		start[pos[end(&g.Tasks[i])]+1]++
	}
	for p := 1; p <= nV; p++ {
		start[p] += start[p-1]
	}
	out := make([]dag.TaskID, len(g.Tasks))
	cursor := append([]int(nil), start[:nV]...)
	for i := range g.Tasks {
		p := pos[end(&g.Tasks[i])]
		out[cursor[p]] = g.Tasks[i].ID
		cursor[p]++
	}
	return out, start
}

// TasksWithSrcIn returns the tasks whose source event position lies in
// [a, b), ordered by position then task ID.
func (p *Plan) TasksWithSrcIn(a, b int) []dag.TaskID {
	return p.TasksBySrc[p.SrcStart[a]:p.SrcStart[b]]
}

// TasksWithDstIn returns the tasks whose destination event position lies in
// [a, b), ordered by position then task ID.
func (p *Plan) TasksWithDstIn(a, b int) []dag.TaskID {
	return p.TasksByDst[p.DstStart[a]:p.DstStart[b]]
}

// Owner returns the index of the window committing task t: the window
// whose core contains t's source event.
func (p *Plan) Owner(t dag.TaskID) int {
	return p.OwnerByPos[p.Pos[p.IR.G.Tasks[t].Src]]
}
