package problem

import (
	"testing"

	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/workloads"
)

func buildIR(t *testing.T) *IR {
	t.Helper()
	w, err := workloads.ByName("LULESH", workloads.Params{Ranks: 4, Iterations: 3, Seed: 1, WorkScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	ir, err := Build(machine.Default(), w.EffScale, w.Graph)
	if err != nil {
		t.Fatal(err)
	}
	return ir
}

func TestWindowizePartition(t *testing.T) {
	ir := buildIR(t)
	nV := len(ir.EventOrder)
	for _, wn := range []int{1, 2, 4, 7} {
		p := ir.Windowize(wn, 8)
		if len(p.Windows) < 1 || len(p.Windows) > wn {
			t.Fatalf("windows=%d: got %d windows", wn, len(p.Windows))
		}
		// Cores partition [0, nV).
		pos := 0
		for i, w := range p.Windows {
			if w.CoreStart != pos {
				t.Fatalf("window %d starts at %d, want %d", i, w.CoreStart, pos)
			}
			if w.CoreEnd <= w.CoreStart {
				t.Fatalf("window %d empty core", i)
			}
			if w.ExtEnd < w.CoreEnd || w.ExtEnd > nV {
				t.Fatalf("window %d bad ExtEnd %d", i, w.ExtEnd)
			}
			pos = w.CoreEnd
		}
		if pos != nV {
			t.Fatalf("cores cover %d of %d events", pos, nV)
		}
		// Cuts never split a simultaneous group.
		for _, w := range p.Windows[1:] {
			a, b := ir.EventOrder[w.CoreStart-1], ir.EventOrder[w.CoreStart]
			if ir.Simultaneous(a, b) {
				t.Fatalf("cut at %d splits a simultaneous group", w.CoreStart)
			}
		}
		// Owner mapping agrees with the cores.
		for i, w := range p.Windows {
			for q := w.CoreStart; q < w.CoreEnd; q++ {
				if p.OwnerByPos[q] != i {
					t.Fatalf("OwnerByPos[%d]=%d, want %d", q, p.OwnerByPos[q], i)
				}
			}
		}
		if !p.Monotone {
			t.Fatal("builder graph should be monotone")
		}
	}
}

func TestWindowizeTaskIndexes(t *testing.T) {
	ir := buildIR(t)
	p := ir.Windowize(4, 16)
	nV := len(ir.EventOrder)

	// Brute-force cross-check of the position-indexed task adjacency.
	for _, w := range p.Windows {
		want := map[dag.TaskID]bool{}
		for _, task := range ir.G.Tasks {
			if q := p.Pos[task.Src]; q >= w.CoreStart && q < w.ExtEnd {
				want[task.ID] = true
			}
		}
		got := p.TasksWithSrcIn(w.CoreStart, w.ExtEnd)
		if len(got) != len(want) {
			t.Fatalf("window %d: reach %d tasks, want %d", w.Index, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("window %d: task %d not in brute-force reach", w.Index, id)
			}
		}
	}
	if got, want := len(p.TasksWithDstIn(0, nV)), len(ir.G.Tasks); got != want {
		t.Fatalf("full dst range lists %d tasks, want %d", got, want)
	}

	// Monotone order: every task is owned by the window of its source, and
	// that window is never after the window of its destination.
	for _, task := range ir.G.Tasks {
		if p.Owner(task.ID) > p.OwnerByPos[p.Pos[task.Dst]] {
			t.Fatalf("task %d owned after its destination window", task.ID)
		}
	}
}

// TestWindowizeNonMonotoneFallsBack: a valid DAG whose event order places a
// task's source after its destination (possible only in hand-written
// traces) must degrade to a single window.
func TestWindowizeNonMonotoneFallsBack(t *testing.T) {
	sh := machine.DefaultShape()
	g := &dag.Graph{
		NumRanks: 1,
		Vertices: []dag.Vertex{
			{ID: 0, Kind: dag.VInit, Rank: dag.AllRanks},
			{ID: 1, Kind: dag.VWait, Rank: 0},
			{ID: 2, Kind: dag.VWait, Rank: 0},
			{ID: 3, Kind: dag.VFinalize, Rank: dag.AllRanks},
		},
		Tasks: []dag.Task{
			{ID: 0, Kind: dag.Compute, Rank: 0, Src: 0, Dst: 2, Work: 0.5, Shape: sh, Class: "w"},
			{ID: 1, Kind: dag.Compute, Rank: 0, Src: 2, Dst: 1, Work: 0, Shape: sh, Class: "w"},
			{ID: 2, Kind: dag.Compute, Rank: 0, Src: 1, Dst: 3, Work: 0, Shape: sh, Class: "w"},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	ir, err := Build(machine.Default(), nil, g)
	if err != nil {
		t.Fatal(err)
	}
	p := ir.Windowize(3, 0)
	if p.Monotone {
		t.Fatal("expected non-monotone order")
	}
	if len(p.Windows) != 1 {
		t.Fatalf("non-monotone order got %d windows, want 1", len(p.Windows))
	}
}
