package problem

import (
	"context"
	"sync"

	"powercap/internal/machine"
	"powercap/internal/obs"
	"powercap/internal/pareto"
)

// Frontier is a work-normalized convex Pareto frontier for one (task shape,
// rank) class: Pts holds (power, time-per-unit-work) points sorted by
// increasing power and strictly decreasing time, and Cfgs the machine
// configuration behind each point. Durations scale linearly with task work
// while power does not depend on it, so one Frontier serves every task of
// the class.
type Frontier struct {
	Pts  []pareto.Point
	Cfgs []machine.Config
}

// IndexOf locates a pareto point within the frontier by its configuration
// index, defaulting to 0 when absent.
func (f *Frontier) IndexOf(p pareto.Point) int {
	for i := range f.Pts {
		if f.Pts[i].Index == p.Index {
			return i
		}
	}
	return 0
}

// Nearest returns the frontier position whose power is closest to targetW —
// the paper's discrete rounding rule ("the configuration closest to the
// optimal point on the Pareto frontier", Sec. 3.2).
func (f *Frontier) Nearest(targetW float64) (int, bool) {
	p, ok := pareto.NearestToMix(f.Pts, targetW)
	if !ok {
		return 0, false
	}
	return f.IndexOf(p), true
}

// Floor returns the highest-power frontier position whose power does not
// exceed targetW — the round-down-safe rule: a task realized at its floor
// point never draws more than its LP-mixed power. A target marginally below
// the frontier minimum (floating-point residue of a convex mix) clamps to
// position 0.
func (f *Frontier) Floor(targetW float64) (int, bool) {
	if len(f.Pts) == 0 {
		return 0, false
	}
	k := 0
	for i, p := range f.Pts {
		if p.PowerW <= targetW+1e-9 {
			k = i
		}
	}
	return k, true
}

// FrontierSet computes and caches Frontiers per (shape, rank) against one
// machine model and per-rank efficiency-scale vector. It is safe for
// concurrent use: parallel sweep workers and concurrent service requests
// share one set and race benignly to populate it.
type FrontierSet struct {
	model *machine.Model
	eff   []float64

	mu    sync.Mutex
	cache map[frontierKey]*Frontier
}

type frontierKey struct {
	shape machine.Shape
	rank  int
}

// NewFrontierSet returns an empty frontier cache over model. effScale may be
// nil (1.0 everywhere).
func NewFrontierSet(model *machine.Model, effScale []float64) *FrontierSet {
	return &FrontierSet{
		model: model,
		eff:   effScale,
		cache: make(map[frontierKey]*Frontier),
	}
}

// Model returns the machine model the set computes against.
func (fs *FrontierSet) Model() *machine.Model { return fs.model }

// Eff returns the efficiency multiplier for a rank's socket (1.0 when
// unspecified or out of range).
func (fs *FrontierSet) Eff(rank int) float64 {
	if fs.eff == nil || rank < 0 || rank >= len(fs.eff) {
		return 1
	}
	return fs.eff[rank]
}

// EffScale returns the raw per-rank efficiency vector (may be nil).
func (fs *FrontierSet) EffScale() []float64 { return fs.eff }

// For returns the convex Pareto frontier for a task shape on a rank's
// socket, computing and caching it on first use.
func (fs *FrontierSet) For(shape machine.Shape, rank int) *Frontier {
	return fs.ForCtx(context.Background(), shape, rank)
}

// ForCtx is For with obs span parentage: a cache miss records the cloud
// construction and hull computation as a pareto.frontier span under ctx.
func (fs *FrontierSet) ForCtx(ctx context.Context, shape machine.Shape, rank int) *Frontier {
	key := frontierKey{shape: shape, rank: rank}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.cache[key]; ok {
		return f
	}
	_, span := obs.Start(ctx, "pareto.frontier")
	defer span.End()
	span.SetAttr("rank", rank)
	cfgs := fs.model.Configs()
	cloud := make([]pareto.Point, len(cfgs))
	for i, c := range cfgs {
		cloud[i] = pareto.Point{
			PowerW: fs.model.Power(shape, c, fs.Eff(rank)),
			TimeS:  fs.model.Duration(1.0, shape, c),
			Index:  i,
		}
	}
	hull := pareto.ConvexFrontier(cloud)
	f := &Frontier{Pts: hull, Cfgs: make([]machine.Config, len(hull))}
	for i, p := range hull {
		f.Cfgs[i] = cfgs[p.Index]
	}
	fs.cache[key] = f
	return f
}
