package faultinject

import (
	"math"
	"testing"
	"time"
)

func TestDisarmedNeverFires(t *testing.T) {
	Disable()
	for _, c := range Classes() {
		for i := 0; i < 100; i++ {
			if Fire(c) {
				t.Fatalf("%v fired while disarmed", c)
			}
		}
	}
	if Armed() {
		t.Fatal("Armed() true after Disable")
	}
	if SlowDelay() != 0 {
		t.Fatalf("SlowDelay = %v while disarmed, want 0", SlowDelay())
	}
}

func TestDeterministicSequence(t *testing.T) {
	run := func() []bool {
		Configure(42, map[Class]float64{LPNaN: 0.3})
		defer Disable()
		out := make([]bool, 200)
		for i := range out {
			out[i] = Fire(LPNaN)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRatesApproximatelyHold(t *testing.T) {
	const n = 20000
	for _, rate := range []float64{0.05, 0.5, 0.95} {
		Configure(7, map[Class]float64{CacheError: rate})
		hits := 0
		for i := 0; i < n; i++ {
			if Fire(CacheError) {
				hits++
			}
		}
		Disable()
		got := float64(hits) / n
		if math.Abs(got-rate) > 0.02 {
			t.Fatalf("rate %.2f produced %.3f over %d draws", rate, got, n)
		}
		if Count(CacheError) != uint64(hits) {
			t.Fatalf("Count = %d, want %d", Count(CacheError), hits)
		}
		if Queries(CacheError) != n {
			t.Fatalf("Queries = %d, want %d", Queries(CacheError), n)
		}
	}
}

func TestUnconfiguredClassNeverFires(t *testing.T) {
	Configure(1, map[Class]float64{LPNaN: 1.0})
	defer Disable()
	for i := 0; i < 100; i++ {
		if Fire(WorkerPanic) {
			t.Fatal("unconfigured class fired")
		}
	}
	if !Fire(LPNaN) {
		t.Fatal("rate-1.0 class did not fire")
	}
}

func TestSlowDelayConfigurable(t *testing.T) {
	Configure(1, map[Class]float64{SlowSolve: 1})
	defer Disable()
	if d := SlowDelay(); d != 10*time.Millisecond {
		t.Fatalf("default SlowDelay = %v", d)
	}
	SetSlowDelay(3 * time.Millisecond)
	if d := SlowDelay(); d != 3*time.Millisecond {
		t.Fatalf("SlowDelay after set = %v", d)
	}
}
