// Package faultinject is a deterministic, seed-driven fault-injection
// registry for the resilience layer's chaos testing (DESIGN.md §10). Hooks
// are compiled into the solve pipeline's hot spots — the LP pivot loops, the
// schedule cache, the service worker path — and are disarmed by default: a
// single atomic pointer load decides "no faults", so production solves pay
// one predictable branch per checkpoint and nothing else.
//
// When armed (Configure), each hook site calls Fire(class), which draws a
// deterministic pseudo-random number from the configured seed and a global
// call counter (splitmix64). The same seed and the same call sequence
// reproduce the same fault pattern, which is what lets the chaos soak test
// assert exact recovery behavior instead of flaky probabilities.
package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Class names one injectable fault.
type Class int32

// Fault classes, one per hook site.
const (
	// LPNaN corrupts the simplex backend's basic values with a NaN at a
	// pivot checkpoint, exercising the NaN detection and
	// refactorization-and-retry guards.
	LPNaN Class = iota
	// LPStall makes a pivot loop report iteration-limit exhaustion early,
	// exercising the fallback ladder's transient-failure path.
	LPStall
	// CacheError fails a schedule-cache operation, exercising the service's
	// cache-bypass path.
	CacheError
	// WorkerPanic panics inside a service worker, exercising panic recovery
	// and the pcschedd_panics_total accounting.
	WorkerPanic
	// SlowSolve delays a solve by the configured SlowDelay, exercising
	// per-rung deadline slices.
	SlowSolve

	numClasses
)

// String names the class as the chaos harness reports it.
func (c Class) String() string {
	switch c {
	case LPNaN:
		return "lp-nan"
	case LPStall:
		return "lp-stall"
	case CacheError:
		return "cache-error"
	case WorkerPanic:
		return "worker-panic"
	case SlowSolve:
		return "slow-solve"
	default:
		return fmt.Sprintf("Class(%d)", int32(c))
	}
}

// Classes lists every fault class in declaration order.
func Classes() []Class {
	return []Class{LPNaN, LPStall, CacheError, WorkerPanic, SlowSolve}
}

// config is one armed configuration; swapped atomically so hooks never lock.
type config struct {
	seed      uint64
	rates     [numClasses]float64
	slowDelay time.Duration
}

var (
	active  atomic.Pointer[config]
	calls   atomic.Uint64              // global draw counter: one per Fire
	fired   [numClasses]atomic.Uint64  // faults actually injected
	queried [numClasses]atomic.Uint64  // hook evaluations while armed
)

// Configure arms the registry: each class fires with its configured
// probability (absent classes never fire). Deterministic for a fixed seed
// and call sequence. Counters are reset.
func Configure(seed uint64, rates map[Class]float64) {
	cfg := &config{seed: seed, slowDelay: 10 * time.Millisecond}
	for c, r := range rates {
		if c >= 0 && c < numClasses {
			cfg.rates[c] = r
		}
	}
	resetCounters()
	active.Store(cfg)
}

// SetSlowDelay overrides the SlowSolve delay (default 10ms). Must be called
// after Configure; a disarmed registry ignores it.
func SetSlowDelay(d time.Duration) {
	if cfg := active.Load(); cfg != nil {
		next := *cfg
		next.slowDelay = d
		active.Store(&next)
	}
}

// Disable disarms every hook. Counters are preserved for post-mortem
// assertions until the next Configure.
func Disable() { active.Store(nil) }

// Armed reports whether any fault class is configured.
func Armed() bool { return active.Load() != nil }

// Fire reports whether the fault should be injected at this hook site. The
// disarmed fast path is one atomic pointer load.
func Fire(c Class) bool {
	cfg := active.Load()
	if cfg == nil || c < 0 || c >= numClasses {
		return false
	}
	rate := cfg.rates[c]
	if rate <= 0 {
		return false
	}
	queried[c].Add(1)
	n := calls.Add(1)
	if u01(splitmix64(cfg.seed+n)) >= rate {
		return false
	}
	fired[c].Add(1)
	return true
}

// Count reports how many times class c actually fired since Configure.
func Count(c Class) uint64 {
	if c < 0 || c >= numClasses {
		return 0
	}
	return fired[c].Load()
}

// Queries reports how many times class c's hook was evaluated while armed.
func Queries(c Class) uint64 {
	if c < 0 || c >= numClasses {
		return 0
	}
	return queried[c].Load()
}

// SlowDelay returns the configured SlowSolve delay (0 when disarmed).
// Hooks that Fire(SlowSolve) sleep this long.
func SlowDelay() time.Duration {
	if cfg := active.Load(); cfg != nil {
		return cfg.slowDelay
	}
	return 0
}

func resetCounters() {
	calls.Store(0)
	for i := range fired {
		fired[i].Store(0)
		queried[i].Store(0)
	}
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mix used as
// a counter-based PRNG (seed+counter in, uniform bits out).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps 64 random bits onto [0,1).
func u01(x uint64) float64 { return float64(x>>11) / (1 << 53) }
