package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Header is the trace metadata that precedes the vertex and task arrays in
// a trace file. A Stream validates it before touching either array, so a
// malformed header fails in O(header) time and bytes — the monolithic
// decoder used to buffer a whole multi-hundred-MB file before noticing a
// bad version field.
type Header struct {
	Version  int
	Name     string
	NumRanks int
	EffScale []float64
}

// Stream incrementally decodes a trace file: the header eagerly at
// construction, then one vertex or task record at a time, never holding the
// full event arrays in memory. The canonical field order (header fields,
// then "vertices", then "tasks") is required; it is what Encode/Write emit.
type Stream struct {
	dec *json.Decoder
	hdr Header

	inVertices bool
	inTasks    bool
	vertsDone  bool
	tasksDone  bool
}

// NewStream reads and validates the trace header from r, stopping at the
// start of the vertices array. Malformed or incomplete headers (bad
// version, invalid rank count, eff_scale/rank mismatch, unknown fields)
// fail here, before any array element is decoded.
func NewStream(r io.Reader) (*Stream, error) {
	s := &Stream{dec: json.NewDecoder(r)}
	s.dec.DisallowUnknownFields()
	if err := s.expectDelim('{'); err != nil {
		return nil, err
	}
	for {
		tok, err := s.dec.Token()
		if err != nil {
			return nil, fmt.Errorf("trace: header: %w", err)
		}
		if d, ok := tok.(json.Delim); ok && d == '}' {
			// No arrays at all: an empty (and necessarily invalid) graph,
			// reported by the caller's structural validation.
			s.vertsDone, s.tasksDone = true, true
			if err := s.validateHeader(); err != nil {
				return nil, err
			}
			return s, nil
		}
		key, ok := tok.(string)
		if !ok {
			return nil, fmt.Errorf("trace: header: unexpected token %v", tok)
		}
		switch key {
		case "version":
			if err := s.dec.Decode(&s.hdr.Version); err != nil {
				return nil, fmt.Errorf("trace: header version: %w", err)
			}
			if s.hdr.Version != FormatVersion {
				return nil, fmt.Errorf("trace: unsupported version %d (want %d)", s.hdr.Version, FormatVersion)
			}
		case "name":
			if err := s.dec.Decode(&s.hdr.Name); err != nil {
				return nil, fmt.Errorf("trace: header name: %w", err)
			}
		case "num_ranks":
			if err := s.dec.Decode(&s.hdr.NumRanks); err != nil {
				return nil, fmt.Errorf("trace: header num_ranks: %w", err)
			}
			if s.hdr.NumRanks < 1 {
				return nil, fmt.Errorf("trace: invalid rank count %d", s.hdr.NumRanks)
			}
		case "eff_scale":
			if err := s.dec.Decode(&s.hdr.EffScale); err != nil {
				return nil, fmt.Errorf("trace: header eff_scale: %w", err)
			}
		case "vertices":
			if err := s.validateHeader(); err != nil {
				return nil, err
			}
			if err := s.expectDelim('['); err != nil {
				return nil, err
			}
			s.inVertices = true
			return s, nil
		case "tasks":
			return nil, fmt.Errorf("trace: tasks array before vertices")
		default:
			return nil, fmt.Errorf("trace: unknown header field %q", key)
		}
	}
}

// validateHeader checks completeness once the header region ends; the
// per-field checks above have already rejected bad values as they appeared.
func (s *Stream) validateHeader() error {
	if s.hdr.Version != FormatVersion {
		return fmt.Errorf("trace: unsupported version %d (want %d)", s.hdr.Version, FormatVersion)
	}
	if s.hdr.NumRanks < 1 {
		return fmt.Errorf("trace: invalid rank count %d", s.hdr.NumRanks)
	}
	if len(s.hdr.EffScale) != 0 && len(s.hdr.EffScale) != s.hdr.NumRanks {
		return fmt.Errorf("trace: eff_scale has %d entries for %d ranks", len(s.hdr.EffScale), s.hdr.NumRanks)
	}
	return nil
}

// Header returns the validated trace header.
func (s *Stream) Header() Header { return s.hdr }

// NextVertex returns the next vertex record, or ok=false once the vertex
// array is exhausted (at which point the stream is positioned at the task
// array, if present).
func (s *Stream) NextVertex() (VertexRec, bool, error) {
	var rec VertexRec
	if !s.inVertices {
		if !s.vertsDone {
			return rec, false, fmt.Errorf("trace: vertex stream not open")
		}
		return rec, false, nil
	}
	if s.dec.More() {
		if err := s.dec.Decode(&rec); err != nil {
			return rec, false, fmt.Errorf("trace: vertex record: %w", err)
		}
		return rec, true, nil
	}
	if err := s.expectDelim(']'); err != nil {
		return rec, false, err
	}
	s.inVertices, s.vertsDone = false, true
	if err := s.openTasks(); err != nil {
		return rec, false, err
	}
	return rec, false, nil
}

// openTasks advances past the end of the vertices array: either into the
// tasks array or to the end of the trace object.
func (s *Stream) openTasks() error {
	tok, err := s.dec.Token()
	if err != nil {
		return fmt.Errorf("trace: after vertices: %w", err)
	}
	if d, ok := tok.(json.Delim); ok && d == '}' {
		s.tasksDone = true
		return nil
	}
	key, ok := tok.(string)
	if !ok || key != "tasks" {
		return fmt.Errorf("trace: expected tasks array after vertices, got %v", tok)
	}
	if err := s.expectDelim('['); err != nil {
		return err
	}
	s.inTasks = true
	return nil
}

// NextTask returns the next task record, or ok=false once the task array is
// exhausted. The vertex array must be drained first.
func (s *Stream) NextTask() (TaskRec, bool, error) {
	var rec TaskRec
	if !s.inTasks {
		if !s.tasksDone {
			return rec, false, fmt.Errorf("trace: task stream not open (drain vertices first)")
		}
		return rec, false, nil
	}
	if s.dec.More() {
		if err := s.dec.Decode(&rec); err != nil {
			return rec, false, fmt.Errorf("trace: task record: %w", err)
		}
		return rec, true, nil
	}
	if err := s.expectDelim(']'); err != nil {
		return rec, false, err
	}
	s.inTasks, s.tasksDone = false, true
	if err := s.expectDelim('}'); err != nil {
		return rec, false, err
	}
	return rec, false, nil
}

func (s *Stream) expectDelim(want json.Delim) error {
	tok, err := s.dec.Token()
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("trace: expected %q, got %v", want, tok)
	}
	return nil
}
