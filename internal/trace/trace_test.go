package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/workloads"
)

func TestRoundTripWorkload(t *testing.T) {
	for _, name := range workloads.Names() {
		w, err := workloads.ByName(name, workloads.Params{Ranks: 4, Iterations: 3, Seed: 2, WorkScale: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, w.Name, w.Graph, w.EffScale); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, eff2, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g2.NumRanks != w.Graph.NumRanks || len(g2.Tasks) != len(w.Graph.Tasks) || len(g2.Vertices) != len(w.Graph.Vertices) {
			t.Fatalf("%s: shape mismatch after round trip", name)
		}
		for i := range w.Graph.Tasks {
			a, b := w.Graph.Tasks[i], g2.Tasks[i]
			if a.Kind != b.Kind || a.Work != b.Work || a.Shape != b.Shape ||
				a.Src != b.Src || a.Dst != b.Dst || a.Bytes != b.Bytes ||
				a.FixedDur != b.FixedDur || a.Class != b.Class || a.Iteration != b.Iteration {
				t.Fatalf("%s: task %d mismatch:\n%+v\n%+v", name, i, a, b)
			}
		}
		for i := range w.EffScale {
			if w.EffScale[i] != eff2[i] {
				t.Fatalf("%s: eff scale mismatch at %d", name, i)
			}
		}
	}
}

// TestRoundTripPreservesLPResult: the real invariant — the decoded trace
// must produce the exact same LP bound as the original graph.
func TestRoundTripPreservesLPResult(t *testing.T) {
	w := workloads.BT(workloads.Params{Ranks: 4, Iterations: 3, Seed: 5, WorkScale: 0.3})
	var buf bytes.Buffer
	if err := Write(&buf, "bt", w.Graph, w.EffScale); err != nil {
		t.Fatal(err)
	}
	g2, eff2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Default()
	a, err := core.NewSolver(m, w.EffScale).SolveIterations(w.Graph, 160)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewSolver(m, eff2).SolveIterations(g2, 160)
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanS != b.MakespanS {
		t.Fatalf("LP bound changed across round trip: %v vs %v", a.MakespanS, b.MakespanS)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad version":    `{"version":99,"num_ranks":1,"vertices":[],"tasks":[]}`,
		"bad ranks":      `{"version":1,"num_ranks":0,"vertices":[],"tasks":[]}`,
		"bad kind":       `{"version":1,"num_ranks":1,"vertices":[{"id":0,"kind":"nope","rank":-1,"iteration":-1}],"tasks":[]}`,
		"unknown fields": `{"version":1,"num_ranks":1,"bogus":true,"vertices":[],"tasks":[]}`,
		"eff mismatch":   `{"version":1,"num_ranks":2,"eff_scale":[1.0],"vertices":[],"tasks":[]}`,
		"not json":       `hello`,
	}
	for name, in := range cases {
		if _, _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestDecodeRejectsMissingShape(t *testing.T) {
	in := `{"version":1,"num_ranks":1,
		"vertices":[
			{"id":0,"kind":"init","rank":-1,"iteration":-1},
			{"id":1,"kind":"finalize","rank":-1,"iteration":-1}],
		"tasks":[{"id":0,"kind":"compute","rank":0,"src":0,"dst":1,"work":1}]}`
	if _, _, err := Read(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("expected missing-shape error, got %v", err)
	}
}

func TestDecodeRejectsStructurallyInvalidGraph(t *testing.T) {
	// Task referencing an out-of-range vertex must be caught by Validate.
	in := `{"version":1,"num_ranks":1,
		"vertices":[
			{"id":0,"kind":"init","rank":-1,"iteration":-1},
			{"id":1,"kind":"finalize","rank":-1,"iteration":-1}],
		"tasks":[{"id":0,"kind":"message","rank":0,"src":0,"dst":9,"fixed_dur":0.1}]}`
	if _, _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestPropertyRandomGraphRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr := 2 + rng.Intn(3)
		b := dag.NewBuilder(nr)
		sh := machine.Shape{
			SerialFrac:     rng.Float64() * 0.1,
			MemFrac:        rng.Float64() * 0.4,
			MemSatThreads:  1 + rng.Intn(8),
			ContentionCoef: rng.Float64() * 0.05,
			Intensity:      0.5 + rng.Float64()*0.5,
		}
		for it := 0; it < 1+rng.Intn(3); it++ {
			b.Pcontrol()
			for r := 0; r < nr; r++ {
				b.Compute(r, rng.Float64(), sh, "w")
			}
			if rng.Intn(2) == 0 && nr > 1 {
				for r := 0; r < nr; r++ {
					b.Isend(r, (r+1)%nr, 1+rng.Intn(1<<20))
				}
				for r := 0; r < nr; r++ {
					b.Recv(r, (r-1+nr)%nr)
				}
			}
			b.Collective("s")
		}
		g := b.Finalize()
		var buf bytes.Buffer
		if err := Write(&buf, "rnd", g, nil); err != nil {
			return false
		}
		g2, _, err := Read(&buf)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(g2.Tasks) != len(g.Tasks) {
			return false
		}
		for i := range g.Tasks {
			if g.Tasks[i] != g2.Tasks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
