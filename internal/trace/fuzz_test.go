package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"powercap/internal/dag"
	"powercap/internal/machine"
)

// seedTrace is a small valid trace (two ranks, one message, one collective)
// used as the fuzz corpus anchor.
func seedTrace() []byte {
	b := dag.NewBuilder(2)
	sh := machine.DefaultShape()
	b.Compute(0, 0.5, sh, "w")
	b.Compute(1, 0.7, sh, "w")
	b.Send(0, 1, 4096)
	b.Recv(1, 0)
	b.Collective("sync")
	g := b.Finalize()
	var buf bytes.Buffer
	if err := Write(&buf, "seed", g, []float64{1.0, 0.98}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzRead feeds arbitrary bytes to the trace parser. The contract: Read
// either rejects the input with an error, or returns a graph that passes
// Validate and survives a Write/Read round trip with an identical canonical
// digest. It must never panic and never accept a structurally broken graph.
func FuzzRead(f *testing.F) {
	f.Add(seedTrace())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"num_ranks":1,"vertices":[],"tasks":[]}`))
	f.Add([]byte(`{"version":1,"num_ranks":2,"vertices":[{"id":0,"kind":"init","rank":-1},{"id":1,"kind":"send","rank":0},{"id":2,"kind":"finalize","rank":-1}],"tasks":[]}`))
	f.Add([]byte(`{"version":1,"num_ranks":1,"vertices":[{"id":0,"kind":"init","rank":-1},{"id":1,"kind":"finalize","rank":-1}],"tasks":[{"id":0,"kind":"compute","rank":0,"src":1,"dst":0}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, eff, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid graph: %v", verr)
		}
		var out bytes.Buffer
		if werr := Write(&out, "roundtrip", g, eff); werr != nil {
			t.Fatalf("Write failed on accepted graph: %v", werr)
		}
		g2, _, rerr := Read(&out)
		if rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
		if dag.Digest(g) != dag.Digest(g2) {
			t.Fatal("round trip changed the canonical digest")
		}
	})
}

// FuzzStream drives the streaming decoder directly: NewStream either
// rejects the header, or the record iteration runs to completion without
// panicking; and whenever the streaming path accepts an input, the
// monolithic File decode must accept it too and produce the identical
// graph (the stream is strictly pickier — it additionally requires the
// canonical field order — never looser).
func FuzzStream(f *testing.F) {
	f.Add(seedTrace())
	f.Add([]byte(`{"version":1,"num_ranks":1,"vertices":[],"tasks":[]}`))
	f.Add([]byte(`{"version":99,"num_ranks":1,"vertices":[],"tasks":[]}`))
	f.Add([]byte(`{"num_ranks":1,"vertices":[]}`))
	f.Add([]byte(`{"version":1,"num_ranks":2,"eff_scale":[1.0,0.95],"vertices":[],"tasks":[]}`))
	f.Add([]byte(`{"version":1,"num_ranks":1,"tasks":[],"vertices":[]}`))
	f.Add([]byte(`{"version":1,"num_ranks":1,"vertices":[{"id":0,"kind":"init","rank":-1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, eff, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("stream accepted an invalid graph: %v", verr)
		}
		var file File
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if derr := dec.Decode(&file); derr != nil {
			t.Fatalf("stream accepted input the File decode rejects: %v", derr)
		}
		g2, eff2, derr := Decode(&file)
		if derr != nil {
			t.Fatalf("stream accepted input Decode rejects: %v", derr)
		}
		if dag.Digest(g) != dag.Digest(g2) {
			t.Fatal("stream and monolithic decode disagree on the graph")
		}
		if len(eff) != len(eff2) {
			t.Fatalf("eff scale mismatch: %d vs %d entries", len(eff), len(eff2))
		}
	})
}
