package trace

import (
	"bytes"
	"testing"

	"powercap/internal/dag"
	"powercap/internal/machine"
)

// seedTrace is a small valid trace (two ranks, one message, one collective)
// used as the fuzz corpus anchor.
func seedTrace() []byte {
	b := dag.NewBuilder(2)
	sh := machine.DefaultShape()
	b.Compute(0, 0.5, sh, "w")
	b.Compute(1, 0.7, sh, "w")
	b.Send(0, 1, 4096)
	b.Recv(1, 0)
	b.Collective("sync")
	g := b.Finalize()
	var buf bytes.Buffer
	if err := Write(&buf, "seed", g, []float64{1.0, 0.98}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzRead feeds arbitrary bytes to the trace parser. The contract: Read
// either rejects the input with an error, or returns a graph that passes
// Validate and survives a Write/Read round trip with an identical canonical
// digest. It must never panic and never accept a structurally broken graph.
func FuzzRead(f *testing.F) {
	f.Add(seedTrace())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"num_ranks":1,"vertices":[],"tasks":[]}`))
	f.Add([]byte(`{"version":1,"num_ranks":2,"vertices":[{"id":0,"kind":"init","rank":-1},{"id":1,"kind":"send","rank":0},{"id":2,"kind":"finalize","rank":-1}],"tasks":[]}`))
	f.Add([]byte(`{"version":1,"num_ranks":1,"vertices":[{"id":0,"kind":"init","rank":-1},{"id":1,"kind":"finalize","rank":-1}],"tasks":[{"id":0,"kind":"compute","rank":0,"src":1,"dst":0}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, eff, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid graph: %v", verr)
		}
		var out bytes.Buffer
		if werr := Write(&out, "roundtrip", g, eff); werr != nil {
			t.Fatalf("Write failed on accepted graph: %v", werr)
		}
		g2, _, rerr := Read(&out)
		if rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
		if dag.Digest(g) != dag.Digest(g2) {
			t.Fatal("round trip changed the canonical digest")
		}
	})
}
