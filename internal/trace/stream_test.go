package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"powercap/internal/dag"
)

// countingReader tracks how many bytes a decoder actually pulled.
type countingReader struct {
	r *strings.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// TestStreamFailsFastOnMalformedHeader: a bad version field must be
// rejected after reading O(header) bytes, not after buffering the (here
// deliberately enormous) vertex array.
func TestStreamFailsFastOnMalformedHeader(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"version":99,"num_ranks":2,"vertices":[`)
	rec := `{"id":0,"kind":"wait","rank":0,"iteration":-1}`
	for i := 0; i < 200000; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(rec)
	}
	sb.WriteString(`],"tasks":[]}`)
	in := sb.String()

	cr := &countingReader{r: strings.NewReader(in)}
	_, err := NewStream(cr)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("expected version error, got %v", err)
	}
	if cr.n > len(in)/10 {
		t.Fatalf("header rejection consumed %d of %d bytes — not failing fast", cr.n, len(in))
	}

	// The monolithic Read wrapper inherits the same fail-fast behavior.
	cr = &countingReader{r: strings.NewReader(in)}
	if _, _, err := Read(cr); err == nil {
		t.Fatal("Read accepted a bad version")
	}
	if cr.n > len(in)/10 {
		t.Fatalf("Read consumed %d of %d bytes before rejecting the header", cr.n, len(in))
	}
}

func TestStreamHeaderValidation(t *testing.T) {
	cases := map[string]string{
		"bad version":      `{"version":2,"num_ranks":1,"vertices":[],"tasks":[]}`,
		"zero ranks":       `{"version":1,"num_ranks":0,"vertices":[],"tasks":[]}`,
		"missing version":  `{"num_ranks":1,"vertices":[],"tasks":[]}`,
		"missing ranks":    `{"version":1,"vertices":[],"tasks":[]}`,
		"eff mismatch":     `{"version":1,"num_ranks":2,"eff_scale":[1.0],"vertices":[],"tasks":[]}`,
		"unknown field":    `{"version":1,"num_ranks":1,"bogus":true,"vertices":[],"tasks":[]}`,
		"tasks first":      `{"version":1,"num_ranks":1,"tasks":[],"vertices":[]}`,
		"not an object":    `[1,2,3]`,
		"empty input":      ``,
		"truncated header": `{"version":1,`,
		"empty object":     `{}`,
	}
	for name, in := range cases {
		if _, err := NewStream(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected header error", name)
		}
	}
}

// TestStreamMatchesMonolithicDecode: streaming a canonical trace yields
// record-for-record what the whole-file File decode yields.
func TestStreamMatchesMonolithicDecode(t *testing.T) {
	data := seedTrace()

	var f File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		t.Fatal(err)
	}

	st, err := NewStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	h := st.Header()
	if h.Version != f.Version || h.NumRanks != f.NumRanks || h.Name != f.Name {
		t.Fatalf("header mismatch: %+v vs file %d/%d/%q", h, f.Version, f.NumRanks, f.Name)
	}
	var verts []VertexRec
	for {
		vr, ok, err := st.NextVertex()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		verts = append(verts, vr)
	}
	var tasks []TaskRec
	for {
		tr, ok, err := st.NextTask()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		tasks = append(tasks, tr)
	}
	if len(verts) != len(f.Vertices) || len(tasks) != len(f.Tasks) {
		t.Fatalf("streamed %d/%d records, want %d/%d",
			len(verts), len(tasks), len(f.Vertices), len(f.Tasks))
	}
	for i := range verts {
		if verts[i] != f.Vertices[i] {
			t.Fatalf("vertex %d differs: %+v vs %+v", i, verts[i], f.Vertices[i])
		}
	}

	// And the Read wrapper reconstructs the identical graph.
	g, eff, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	g2, eff2, err := Decode(&f)
	if err != nil {
		t.Fatal(err)
	}
	if dag.Digest(g) != dag.Digest(g2) {
		t.Fatal("streamed graph digest differs from monolithic decode")
	}
	if len(eff) != len(eff2) {
		t.Fatalf("eff scale length mismatch: %d vs %d", len(eff), len(eff2))
	}
}

func TestStreamRejectsTaskBeforeVerticesDrained(t *testing.T) {
	st, err := NewStream(bytes.NewReader(seedTrace()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.NextTask(); err == nil {
		t.Fatal("NextTask before draining vertices should error")
	}
}
