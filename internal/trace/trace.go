// Package trace serializes application task graphs to a stable JSON
// format, the artifact an MPI tracing library would emit on the paper's
// pipeline (Sec. 3.1: "a directed acyclic graph representation of the
// application's computation and communication dependencies, which we
// obtain from an MPI tracing library").
//
// A trace file carries the DAG (vertices = MPI calls, edges = tasks and
// messages), each compute task's response shape, and the per-socket
// efficiency scales of the machine the trace was taken on — everything the
// LP needs to bound the application's power-constrained performance
// offline.
package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/obs"
)

// FormatVersion identifies the trace schema; bump on incompatible change.
const FormatVersion = 1

// File is the on-disk representation of a traced application.
type File struct {
	Version  int    `json:"version"`
	Name     string `json:"name,omitempty"`
	NumRanks int    `json:"num_ranks"`
	// EffScale records per-socket power-efficiency multipliers measured
	// on the traced machine (empty = nominal sockets).
	EffScale []float64   `json:"eff_scale,omitempty"`
	Vertices []VertexRec `json:"vertices"`
	Tasks    []TaskRec   `json:"tasks"`
}

// VertexRec is one MPI call event.
type VertexRec struct {
	ID           int    `json:"id"`
	Kind         string `json:"kind"`
	Rank         int    `json:"rank"` // -1 = all ranks
	Iteration    int    `json:"iteration"`
	IterBoundary bool   `json:"iter_boundary,omitempty"`
	Label        string `json:"label,omitempty"`
}

// TaskRec is one DAG edge.
type TaskRec struct {
	ID        int    `json:"id"`
	Kind      string `json:"kind"` // "compute" or "message"
	Rank      int    `json:"rank"`
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	Iteration int    `json:"iteration"`

	// Compute fields.
	Work  float64   `json:"work,omitempty"`
	Shape *ShapeRec `json:"shape,omitempty"`
	Class string    `json:"class,omitempty"`

	// Message fields.
	Bytes    int     `json:"bytes,omitempty"`
	FixedDur float64 `json:"fixed_dur,omitempty"`
}

// ShapeRec mirrors machine.Shape.
type ShapeRec struct {
	SerialFrac     float64 `json:"serial_frac"`
	MemFrac        float64 `json:"mem_frac"`
	MemSatThreads  int     `json:"mem_sat_threads"`
	ContentionCoef float64 `json:"contention_coef"`
	Intensity      float64 `json:"intensity"`
}

var vertexKindNames = map[dag.VertexKind]string{
	dag.VInit: "init", dag.VFinalize: "finalize", dag.VCollective: "collective",
	dag.VSend: "send", dag.VIsend: "isend", dag.VRecv: "recv",
	dag.VWait: "wait", dag.VPcontrol: "pcontrol",
}

func vertexKindOf(name string) (dag.VertexKind, error) {
	for k, n := range vertexKindNames {
		if n == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown vertex kind %q", name)
}

// Encode converts a graph (plus optional machine metadata) to a File.
func Encode(name string, g *dag.Graph, effScale []float64) *File {
	f := &File{
		Version:  FormatVersion,
		Name:     name,
		NumRanks: g.NumRanks,
		EffScale: append([]float64(nil), effScale...),
	}
	for _, v := range g.Vertices {
		f.Vertices = append(f.Vertices, VertexRec{
			ID: int(v.ID), Kind: vertexKindNames[v.Kind], Rank: v.Rank,
			Iteration: v.Iteration, IterBoundary: v.IterBoundary, Label: v.Label,
		})
	}
	for _, t := range g.Tasks {
		rec := TaskRec{
			ID: int(t.ID), Rank: t.Rank,
			Src: int(t.Src), Dst: int(t.Dst), Iteration: t.Iteration,
		}
		if t.Kind == dag.Compute {
			rec.Kind = "compute"
			rec.Work = t.Work
			rec.Class = t.Class
			rec.Shape = &ShapeRec{
				SerialFrac:     t.Shape.SerialFrac,
				MemFrac:        t.Shape.MemFrac,
				MemSatThreads:  t.Shape.MemSatThreads,
				ContentionCoef: t.Shape.ContentionCoef,
				Intensity:      t.Shape.Intensity,
			}
		} else {
			rec.Kind = "message"
			rec.Bytes = t.Bytes
			rec.FixedDur = t.FixedDur
		}
		f.Tasks = append(f.Tasks, rec)
	}
	return f
}

// Decode reconstructs the graph from a File, validating structure.
func Decode(f *File) (*dag.Graph, []float64, error) {
	return DecodeCtx(context.Background(), f)
}

// DecodeCtx is Decode recorded as a trace.decode obs span (with the graph
// validation nested under it as dag.validate).
func DecodeCtx(ctx context.Context, f *File) (*dag.Graph, []float64, error) {
	ctx, span := obs.Start(ctx, "trace.decode")
	defer span.End()
	span.SetAttr("vertices", len(f.Vertices))
	span.SetAttr("tasks", len(f.Tasks))
	if f.Version != FormatVersion {
		return nil, nil, fmt.Errorf("trace: unsupported version %d (want %d)", f.Version, FormatVersion)
	}
	if f.NumRanks < 1 {
		return nil, nil, fmt.Errorf("trace: invalid rank count %d", f.NumRanks)
	}
	if len(f.EffScale) != 0 && len(f.EffScale) != f.NumRanks {
		return nil, nil, fmt.Errorf("trace: eff_scale has %d entries for %d ranks", len(f.EffScale), f.NumRanks)
	}
	g := &dag.Graph{NumRanks: f.NumRanks}
	for i, vr := range f.Vertices {
		v, err := decodeVertexRec(vr, i)
		if err != nil {
			return nil, nil, err
		}
		g.Vertices = append(g.Vertices, v)
	}
	for i, tr := range f.Tasks {
		t, err := decodeTaskRec(tr, i)
		if err != nil {
			return nil, nil, err
		}
		g.Tasks = append(g.Tasks, t)
	}
	if err := g.ValidateCtx(ctx); err != nil {
		return nil, nil, fmt.Errorf("trace: decoded graph invalid: %w", err)
	}
	return g, f.EffScale, nil
}

// decodeVertexRec converts one vertex record, enforcing dense sequential
// IDs (record i must carry id i).
func decodeVertexRec(vr VertexRec, i int) (dag.Vertex, error) {
	if vr.ID != i {
		return dag.Vertex{}, fmt.Errorf("trace: vertex %d out of order (id %d)", i, vr.ID)
	}
	kind, err := vertexKindOf(vr.Kind)
	if err != nil {
		return dag.Vertex{}, err
	}
	return dag.Vertex{
		ID: dag.VertexID(vr.ID), Kind: kind, Rank: vr.Rank,
		Iteration: vr.Iteration, IterBoundary: vr.IterBoundary, Label: vr.Label,
	}, nil
}

// decodeTaskRec converts one task record, enforcing dense sequential IDs.
func decodeTaskRec(tr TaskRec, i int) (dag.Task, error) {
	if tr.ID != i {
		return dag.Task{}, fmt.Errorf("trace: task %d out of order (id %d)", i, tr.ID)
	}
	t := dag.Task{
		ID: dag.TaskID(tr.ID), Rank: tr.Rank,
		Src: dag.VertexID(tr.Src), Dst: dag.VertexID(tr.Dst),
		Iteration: tr.Iteration,
	}
	switch tr.Kind {
	case "compute":
		t.Kind = dag.Compute
		t.Work = tr.Work
		t.Class = tr.Class
		if tr.Shape == nil {
			return dag.Task{}, fmt.Errorf("trace: compute task %d missing shape", tr.ID)
		}
		t.Shape = machine.Shape{
			SerialFrac:     tr.Shape.SerialFrac,
			MemFrac:        tr.Shape.MemFrac,
			MemSatThreads:  tr.Shape.MemSatThreads,
			ContentionCoef: tr.Shape.ContentionCoef,
			Intensity:      tr.Shape.Intensity,
		}
	case "message":
		t.Kind = dag.Message
		t.Bytes = tr.Bytes
		t.FixedDur = tr.FixedDur
	default:
		return dag.Task{}, fmt.Errorf("trace: task %d has unknown kind %q", tr.ID, tr.Kind)
	}
	return t, nil
}

// Write serializes the graph as indented JSON.
func Write(w io.Writer, name string, g *dag.Graph, effScale []float64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Encode(name, g, effScale))
}

// Read parses a JSON trace and reconstructs the graph. It is a thin
// wrapper over the streaming decoder: the header is validated before
// either array is touched, and records are decoded one at a time instead
// of buffering the whole file.
func Read(r io.Reader) (*dag.Graph, []float64, error) {
	return ReadCtx(context.Background(), r)
}

// ReadCtx is Read recorded as a trace.parse obs span, with the graph
// validation (dag.validate) nested under it.
func ReadCtx(ctx context.Context, r io.Reader) (*dag.Graph, []float64, error) {
	ctx, span := obs.Start(ctx, "trace.parse")
	defer span.End()
	st, err := NewStream(r)
	if err != nil {
		return nil, nil, err
	}
	g := &dag.Graph{NumRanks: st.Header().NumRanks}
	for {
		vr, ok, err := st.NextVertex()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		v, err := decodeVertexRec(vr, len(g.Vertices))
		if err != nil {
			return nil, nil, err
		}
		g.Vertices = append(g.Vertices, v)
	}
	for {
		tr, ok, err := st.NextTask()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		t, err := decodeTaskRec(tr, len(g.Tasks))
		if err != nil {
			return nil, nil, err
		}
		g.Tasks = append(g.Tasks, t)
	}
	span.SetAttr("vertices", len(g.Vertices))
	span.SetAttr("tasks", len(g.Tasks))
	if err := g.ValidateCtx(ctx); err != nil {
		return nil, nil, fmt.Errorf("trace: decoded graph invalid: %w", err)
	}
	return g, st.Header().EffScale, nil
}
