package workloads

import (
	"testing"

	"powercap/internal/coarsen"
	"powercap/internal/dag"
)

func params() Params {
	return Params{Ranks: 4, Iterations: 3, Seed: 7, WorkScale: 0.2}
}

func TestAllWorkloadsValidate(t *testing.T) {
	for _, name := range Names() {
		w, err := ByName(name, params())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Graph.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(w.EffScale) != 4 {
			t.Fatalf("%s: effScale len %d", name, len(w.EffScale))
		}
		if w.Graph.Iterations() != 2 {
			t.Fatalf("%s: iterations = %d, want 2", name, w.Graph.Iterations())
		}
		slices, err := dag.SliceAll(w.Graph)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(slices) != 4 { // prologue + 3
			t.Fatalf("%s: %d slices, want 4", name, len(slices))
		}
	}
}

func TestByNameCaseInsensitiveAndUnknown(t *testing.T) {
	if _, err := ByName("comd", params()); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("lulesh", params()); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope", params()); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := BT(params())
	b := BT(params())
	if len(a.Graph.Tasks) != len(b.Graph.Tasks) {
		t.Fatal("nondeterministic task count")
	}
	for i := range a.Graph.Tasks {
		if a.Graph.Tasks[i].Work != b.Graph.Tasks[i].Work {
			t.Fatalf("nondeterministic work at task %d", i)
		}
	}
	for r := range a.EffScale {
		if a.EffScale[r] != b.EffScale[r] {
			t.Fatal("nondeterministic efficiency scales")
		}
	}
}

func TestBTImbalanceProfile(t *testing.T) {
	w := BT(Params{Ranks: 8, Iterations: 2, Seed: 1, WorkScale: 1})
	perRank := make([]float64, 8)
	for _, task := range w.Graph.Tasks {
		if task.Kind == dag.Compute && task.Class == "solve" {
			perRank[task.Rank] += task.Work
		}
	}
	min, max := perRank[0], perRank[0]
	for _, v := range perRank[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	// BT-MZ's zone balancer leaves a residual skew of roughly ±6%
	// (see the generator comment); the spread must be clearly larger
	// than SP's near-zero noise but modest in absolute terms.
	if max/min < 1.08 || max/min > 1.35 {
		t.Fatalf("BT spread %.3fx, want within [1.08, 1.35]", max/min)
	}
}

func TestSPIsBalanced(t *testing.T) {
	w := SP(Params{Ranks: 8, Iterations: 2, Seed: 1, WorkScale: 1})
	perRank := make([]float64, 8)
	for _, task := range w.Graph.Tasks {
		if task.Kind == dag.Compute && task.Work > 0 && task.Iteration >= 0 {
			perRank[task.Rank] += task.Work
		}
	}
	min, max := perRank[0], perRank[0]
	for _, v := range perRank[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min > 1.05 {
		t.Fatalf("SP spread %.3fx, want ≤ 1.05x (well balanced)", max/min)
	}
}

func TestCoMDOnlyCollectives(t *testing.T) {
	w := CoMD(params())
	for _, task := range w.Graph.Tasks {
		if task.Kind == dag.Message {
			t.Fatal("CoMD proxy must not contain point-to-point messages")
		}
	}
}

func TestLULESHHasPointToPoint(t *testing.T) {
	w := LULESH(params())
	msgs := 0
	for _, task := range w.Graph.Tasks {
		if task.Kind == dag.Message {
			msgs++
		}
	}
	if msgs == 0 {
		t.Fatal("LULESH proxy must contain point-to-point messages")
	}
}

func TestLULESHShapeHasContention(t *testing.T) {
	w := LULESH(params())
	found := false
	for _, task := range w.Graph.Tasks {
		if task.Kind == dag.Compute && task.Class == "stress" {
			if task.Shape.ContentionCoef <= 0 {
				t.Fatal("LULESH stress tasks need cache contention")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no stress tasks generated")
	}
}

func TestDefaultParams(t *testing.T) {
	w := CoMD(Params{})
	if w.Params.Ranks != 32 || w.Params.Iterations != 10 {
		t.Fatalf("defaults = %+v, want 32 ranks / 10 iterations", w.Params)
	}
}

// TestSyntheticDeterministicAndSized: the generator is seeded-deterministic
// (same params → identical digest; different seed → different trace) and
// lands within one round of the requested event count.
func TestSyntheticDeterministicAndSized(t *testing.T) {
	p := SynthParams{Ranks: 4, Events: 2000, Seed: 9}
	a := Synthetic(p)
	bb := Synthetic(p)
	if dag.Digest(a.Graph) != dag.Digest(bb.Graph) {
		t.Fatal("same params produced different traces")
	}
	if dag.Digest(a.Graph) == dag.Digest(Synthetic(SynthParams{Ranks: 4, Events: 2000, Seed: 10}).Graph) {
		t.Fatal("different seeds produced identical traces")
	}
	if err := a.Graph.Validate(); err != nil {
		t.Fatalf("synthetic graph invalid: %v", err)
	}
	n := len(a.Graph.Vertices)
	perRound := 4 * (p.normalize().Fragments + 2)
	if n > p.Events || n < p.Events-perRound-1 {
		t.Fatalf("got %d vertices for -events %d (round size %d)", n, p.Events, perRound)
	}
}

// TestSyntheticFragmentChainsMerge: the fragment/Wait chains are the
// coarsening substrate — a work epsilon above a few fragment sizes must
// merge a substantial share of the tasks.
func TestSyntheticFragmentChainsMerge(t *testing.T) {
	w := Synthetic(SynthParams{Ranks: 4, Events: 2000, Seed: 1})
	cg, m, err := coarsen.Coarsen(w.Graph, 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	if m.MergedTasks == 0 {
		t.Fatal("no tasks merged")
	}
	if frac := float64(m.MergedTasks) / float64(len(w.Graph.Tasks)); frac < 0.3 {
		t.Fatalf("only %.0f%% of tasks merged; fragment chains should dominate", frac*100)
	}
	if len(cg.Vertices) >= len(w.Graph.Vertices) {
		t.Fatal("no vertices removed")
	}
}
