// Package workloads generates synthetic proxies of the four benchmarks the
// paper evaluates (Sec. 5.2): CoMD, LULESH 2.0, and SP and BT from NAS-MZ.
//
// The real benchmarks are MPI + OpenMP codes run on 32 sockets of LLNL's
// Cab cluster; here each proxy reproduces the *communication structure and
// imbalance profile* that Sec. 6 identifies as driving the results:
//
//   - CoMD: all communication is collectives; mild dynamic load imbalance
//     from atom migration. "The only task that remains for the LP solver or
//     power reallocation algorithm is to minimize load imbalance by
//     reallocating power between ranks at every collective call."
//   - LULESH: "a multitude of point-to-point messages between collective
//     calls" plus cache contention strong enough that 4–5 OpenMP threads
//     beat 8 under a power cap (Table 3).
//   - BT (NAS-MZ): strong static load imbalance from uneven zone sizes —
//     the case where nonuniform power allocation buys up to 75% (Fig. 13).
//   - SP (NAS-MZ): well balanced, many short tasks; almost no headroom for
//     reallocation, and a minefield of switch overheads for adaptive
//     runtimes (Fig. 14 shows Conductor *losing* to Static here).
//
// Each proxy is instrumented like the paper's benchmarks: MPI_Pcontrol at
// every iteration boundary. All randomness is seeded for reproducibility.
package workloads

import (
	"fmt"
	"math/rand"
	"strings"

	"powercap/internal/dag"
	"powercap/internal/machine"
)

// Params sizes a workload instance. The paper runs 32 MPI processes (one
// per socket); benchmarks in this repository default smaller for speed.
type Params struct {
	Ranks      int
	Iterations int
	// Seed drives load-imbalance noise and per-socket efficiency
	// variation.
	Seed int64
	// WorkScale multiplies all task work; 1.0 gives paper-like
	// iteration times of roughly a second. Benchmarks may shrink it.
	WorkScale float64
}

func (p Params) normalize() Params {
	if p.Ranks <= 0 {
		p.Ranks = 32
	}
	if p.Iterations <= 0 {
		p.Iterations = 10
	}
	if p.WorkScale <= 0 {
		p.WorkScale = 1
	}
	return p
}

// Workload is a generated benchmark instance.
type Workload struct {
	Name  string
	Graph *dag.Graph
	// EffScale is the per-rank socket power-efficiency multiplier
	// ("differences in power efficiency between individual processors",
	// Sec. 4.2) — an exploitable source of nonuniform allocations.
	EffScale []float64
	Params   Params
}

// Names lists the available workloads: the paper's four in its order of
// presentation, then the CG and FT proxies added for the realization
// experiments (classic NAS kernels at the two ends of the memory-boundedness
// spectrum the paper's four only partially cover).
func Names() []string { return []string{"CoMD", "LULESH", "SP", "BT", "CG", "FT"} }

// ByName builds the named workload (case-insensitive).
func ByName(name string, p Params) (*Workload, error) {
	switch strings.ToLower(name) {
	case "comd":
		return CoMD(p), nil
	case "lulesh":
		return LULESH(p), nil
	case "sp":
		return SP(p), nil
	case "bt":
		return BT(p), nil
	case "cg":
		return CG(p), nil
	case "ft":
		return FT(p), nil
	default:
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
}

// effScales draws per-socket power-efficiency multipliers ~ N(1, sigma).
func effScales(rng *rand.Rand, ranks int, sigma float64) []float64 {
	out := make([]float64, ranks)
	for r := range out {
		out[r] = 1 + sigma*rng.NormFloat64()
		if out[r] < 0.9 {
			out[r] = 0.9
		}
		if out[r] > 1.1 {
			out[r] = 1.1
		}
	}
	return out
}

// comdShape: the force kernel, moderate power intensity. Calibrated so 8
// threads at the DVFS floor draw just under 30 W — the paper's Fig. 12
// shows CoMD long tasks at 28–36 W with both Static and the LP keeping 8
// threads at a 30 W per-socket cap, i.e. no duty-cycle cliff.
func comdShape() machine.Shape {
	return machine.Shape{
		SerialFrac:    0.02,
		MemFrac:       0.12,
		MemSatThreads: 6,
		Intensity:     0.62,
	}
}

// CoMD builds the molecular-dynamics proxy: per iteration one large force
// computation and one small integration step, separated by collectives,
// with mild static skew plus per-iteration dynamic noise.
func CoMD(p Params) *Workload {
	p = p.normalize()
	rng := rand.New(rand.NewSource(p.Seed))
	eff := effScales(rng, p.Ranks, 0.015)
	sh := comdShape()

	// Static skew from the initial atom decomposition plus dynamic noise
	// from migration. CoMD is mildly imbalanced (paper: LP gains 2.4 to
	// 12.6% over Static, median 4.6%).
	static := make([]float64, p.Ranks)
	for r := range static {
		static[r] = 1 + 0.03*rng.NormFloat64()
	}

	b := dag.NewBuilder(p.Ranks)
	for r := 0; r < p.Ranks; r++ {
		b.Compute(r, 0.05*p.WorkScale, sh, "setup")
	}
	for it := 0; it < p.Iterations; it++ {
		b.Pcontrol()
		for r := 0; r < p.Ranks; r++ {
			w := 4.0 * p.WorkScale * static[r] * (1 + 0.02*rng.NormFloat64())
			if w < 0.1*p.WorkScale {
				w = 0.1 * p.WorkScale
			}
			b.Compute(r, w, sh, "force")
		}
		b.Collective("allreduce-halo")
		for r := 0; r < p.Ranks; r++ {
			b.Compute(r, 0.4*p.WorkScale, sh, "integrate")
		}
		b.Collective("allreduce-energy")
	}
	return &Workload{Name: "CoMD", Graph: b.Finalize(), EffScale: eff, Params: p}
}

// luleshShape: the shock-hydro kernel with cache contention calibrated so
// that ~5 threads at high frequency beats 8 threads under a 50 W cap
// (Table 3: Static 8 threads/0.883 rel. freq vs Conductor-LP 4–5
// threads/≈1.0 rel. freq, a ≈1.35× speedup).
func luleshShape() machine.Shape {
	return machine.Shape{
		SerialFrac:     0.02,
		MemFrac:        0.30,
		MemSatThreads:  4,
		ContentionCoef: 0.03,
		Intensity:      0.95,
	}
}

// LULESH builds the shock-hydrodynamics proxy: per iteration a large
// stress/hourglass phase, a ring halo exchange of point-to-point messages,
// a positional update phase, and the dt-reduction collective.
func LULESH(p Params) *Workload {
	p = p.normalize()
	rng := rand.New(rand.NewSource(p.Seed + 1))
	eff := effScales(rng, p.Ranks, 0.015)
	sh := luleshShape()

	static := make([]float64, p.Ranks)
	for r := range static {
		static[r] = 1 + 0.05*rng.NormFloat64()
	}
	const haloBytes = 256 << 10

	b := dag.NewBuilder(p.Ranks)
	for r := 0; r < p.Ranks; r++ {
		b.Compute(r, 0.05*p.WorkScale, sh, "setup")
	}
	for it := 0; it < p.Iterations; it++ {
		b.Pcontrol()
		for r := 0; r < p.Ranks; r++ {
			w := 3.0 * p.WorkScale * static[r] * (1 + 0.02*rng.NormFloat64())
			if w < 0.1*p.WorkScale {
				w = 0.1 * p.WorkScale
			}
			b.Compute(r, w, sh, "stress")
		}
		if p.Ranks > 1 {
			// Ring halo exchange: Isend both ways, then receive.
			for r := 0; r < p.Ranks; r++ {
				b.Isend(r, (r+1)%p.Ranks, haloBytes)
			}
			for r := 0; r < p.Ranks; r++ {
				b.Recv(r, (r-1+p.Ranks)%p.Ranks)
			}
		}
		for r := 0; r < p.Ranks; r++ {
			b.Compute(r, 1.0*p.WorkScale*static[r], sh, "update")
		}
		b.Collective("allreduce-dt")
	}
	return &Workload{Name: "LULESH", Graph: b.Finalize(), EffScale: eff, Params: p}
}

// nasShape: the NAS-MZ solver kernels, moderately memory-bound.
func nasShape() machine.Shape {
	return machine.Shape{
		SerialFrac:    0.03,
		MemFrac:       0.20,
		MemSatThreads: 6,
		Intensity:     0.95,
	}
}

// btShape: BT-MZ's block-tridiagonal solver is the most power-hungry of
// the four kernels — at a 30 W cap its 8-thread floor forces RAPL deep
// into duty-cycle modulation ("22% of their maximum clock frequency",
// Sec. 6.4), which is what opens the paper's 74.9% gap.
func btShape() machine.Shape {
	s := nasShape()
	s.Intensity = 1.1
	return s
}

// SP builds the scalar-pentadiagonal proxy: well load-balanced, with
// several short solver sweeps per iteration — the structure that starves
// adaptive runtimes of headroom while charging them switch overheads.
func SP(p Params) *Workload {
	p = p.normalize()
	rng := rand.New(rand.NewSource(p.Seed + 2))
	eff := effScales(rng, p.Ranks, 0.01)
	sh := nasShape()
	const exchBytes = 128 << 10

	b := dag.NewBuilder(p.Ranks)
	for r := 0; r < p.Ranks; r++ {
		b.Compute(r, 0.05*p.WorkScale, sh, "setup")
	}
	sweeps := []string{"x-solve", "y-solve", "z-solve", "add"}
	for it := 0; it < p.Iterations; it++ {
		b.Pcontrol()
		for si, sweep := range sweeps {
			for r := 0; r < p.Ranks; r++ {
				w := 0.35 * p.WorkScale * (1 + 0.005*rng.NormFloat64())
				b.Compute(r, w, sh, sweep)
			}
			if si < len(sweeps)-1 && p.Ranks > 1 {
				for r := 0; r < p.Ranks; r++ {
					b.Isend(r, (r+1)%p.Ranks, exchBytes)
				}
				for r := 0; r < p.Ranks; r++ {
					b.Recv(r, (r-1+p.Ranks)%p.Ranks)
				}
			}
		}
		b.Collective("rhs-norm")
	}
	return &Workload{Name: "SP", Graph: b.Finalize(), EffScale: eff, Params: p}
}

// cgShape: the sparse matrix-vector product at CG's heart saturates memory
// bandwidth early (irregular gathers through the sparse structure), so extra
// threads past saturation buy little time while still drawing power — under
// a cap the frontier favors few threads, making CG the strongest case for
// power reallocation per watt among these proxies.
func cgShape() machine.Shape {
	return machine.Shape{
		SerialFrac:     0.02,
		MemFrac:        0.45,
		MemSatThreads:  4,
		ContentionCoef: 0.02,
		Intensity:      0.70,
	}
}

// CG builds the conjugate-gradient proxy: per iteration a heavy sparse
// matvec with point-to-point partition exchanges, then the two dot-product
// allreduces and a light vector-update phase. Row-partition skew gives a
// mild static imbalance.
func CG(p Params) *Workload {
	p = p.normalize()
	rng := rand.New(rand.NewSource(p.Seed + 4))
	eff := effScales(rng, p.Ranks, 0.015)
	sh := cgShape()
	const exchBytes = 96 << 10

	// Row-partition skew: nonzeros per rank vary with the sparsity pattern.
	static := make([]float64, p.Ranks)
	for r := range static {
		static[r] = 1 + 0.04*rng.NormFloat64()
	}

	b := dag.NewBuilder(p.Ranks)
	for r := 0; r < p.Ranks; r++ {
		b.Compute(r, 0.05*p.WorkScale, sh, "setup")
	}
	for it := 0; it < p.Iterations; it++ {
		b.Pcontrol()
		for r := 0; r < p.Ranks; r++ {
			w := 2.8 * p.WorkScale * static[r] * (1 + 0.02*rng.NormFloat64())
			if w < 0.1*p.WorkScale {
				w = 0.1 * p.WorkScale
			}
			b.Compute(r, w, sh, "matvec")
		}
		if p.Ranks > 1 {
			for r := 0; r < p.Ranks; r++ {
				b.Isend(r, (r+1)%p.Ranks, exchBytes)
			}
			for r := 0; r < p.Ranks; r++ {
				b.Recv(r, (r-1+p.Ranks)%p.Ranks)
			}
		}
		b.Collective("allreduce-rho")
		for r := 0; r < p.Ranks; r++ {
			b.Compute(r, 0.5*p.WorkScale, sh, "axpy")
		}
		b.Collective("allreduce-alpha")
	}
	return &Workload{Name: "CG", Graph: b.Finalize(), EffScale: eff, Params: p}
}

// ftShape: the 1-D FFT passes are compute-heavy and cache-friendly — high
// intensity, late memory saturation — so FT holds 8 threads profitable far
// down the cap range and stresses the frequency (rather than thread-count)
// axis of the frontier.
func ftShape() machine.Shape {
	return machine.Shape{
		SerialFrac:    0.02,
		MemFrac:       0.10,
		MemSatThreads: 7,
		Intensity:     1.0,
	}
}

// FT builds the 3-D FFT proxy: per iteration two local FFT passes separated
// by the all-to-all transpose (modeled as a collective — every rank blocks
// for every other), closed by the checksum allreduce. FFT work is nearly
// perfectly balanced; what little skew exists is dynamic noise.
func FT(p Params) *Workload {
	p = p.normalize()
	rng := rand.New(rand.NewSource(p.Seed + 5))
	eff := effScales(rng, p.Ranks, 0.015)
	sh := ftShape()

	b := dag.NewBuilder(p.Ranks)
	for r := 0; r < p.Ranks; r++ {
		b.Compute(r, 0.05*p.WorkScale, sh, "setup")
	}
	for it := 0; it < p.Iterations; it++ {
		b.Pcontrol()
		for r := 0; r < p.Ranks; r++ {
			w := 2.2 * p.WorkScale * (1 + 0.01*rng.NormFloat64())
			b.Compute(r, w, sh, "fft-local")
		}
		b.Collective("alltoall-transpose")
		for r := 0; r < p.Ranks; r++ {
			w := 1.6 * p.WorkScale * (1 + 0.01*rng.NormFloat64())
			b.Compute(r, w, sh, "fft-planes")
		}
		b.Collective("allreduce-checksum")
	}
	return &Workload{Name: "FT", Graph: b.Finalize(), EffScale: eff, Params: p}
}

// BT builds the block-tridiagonal proxy with NAS-MZ's hallmark: strongly
// uneven zone sizes. The heaviest ranks carry several times the work of
// the lightest, which is why the LP's nonuniform allocation buys up to
// ~75% over Static at 30 W per socket (Fig. 13).
func BT(p Params) *Workload {
	p = p.normalize()
	rng := rand.New(rand.NewSource(p.Seed + 3))
	eff := effScales(rng, p.Ranks, 0.015)
	sh := btShape()
	const exchBytes = 192 << 10

	// Residual zone-size imbalance across ranks. BT-MZ's zones vary
	// hugely, but its zone load balancer packs them onto ranks to within
	// a modest residual skew; the paper's Fig. 13 shows all three methods
	// within 4.8% of each other at relaxed caps, which bounds the static
	// imbalance to roughly ±4%. The famous 75% gain at 30 W comes from
	// that skew being amplified by RAPL's duty-cycle cliff (and from the
	// LP escaping the cliff entirely via fewer threads at higher
	// frequency), not from raw spread.
	static := make([]float64, p.Ranks)
	sum := 0.0
	for r := range static {
		frac := 0.0
		if p.Ranks > 1 {
			frac = float64(r) / float64(p.Ranks-1)
		}
		static[r] = 0.96 + 0.08*frac
		sum += static[r]
	}
	for r := range static {
		static[r] *= float64(p.Ranks) / sum
	}
	// Shuffle so heaviness is not correlated with rank order.
	rng.Shuffle(p.Ranks, func(i, j int) { static[i], static[j] = static[j], static[i] })

	b := dag.NewBuilder(p.Ranks)
	for r := 0; r < p.Ranks; r++ {
		b.Compute(r, 0.05*p.WorkScale, sh, "setup")
	}
	for it := 0; it < p.Iterations; it++ {
		b.Pcontrol()
		for r := 0; r < p.Ranks; r++ {
			w := 2.5 * p.WorkScale * static[r] * (1 + 0.01*rng.NormFloat64())
			if w < 0.05*p.WorkScale {
				w = 0.05 * p.WorkScale
			}
			b.Compute(r, w, sh, "solve")
		}
		if p.Ranks > 1 {
			for r := 0; r < p.Ranks; r++ {
				b.Isend(r, (r+1)%p.Ranks, exchBytes)
			}
			for r := 0; r < p.Ranks; r++ {
				b.Recv(r, (r-1+p.Ranks)%p.Ranks)
			}
		}
		for r := 0; r < p.Ranks; r++ {
			b.Compute(r, 0.5*p.WorkScale*static[r], sh, "update")
		}
		b.Collective("residual")
	}
	return &Workload{Name: "BT", Graph: b.Finalize(), EffScale: eff, Params: p}
}

// SynthParams sizes a synthetic large-trace instance (Synthetic below).
// Zero values take defaults from normalize.
type SynthParams struct {
	// Ranks is the MPI process count (default 8).
	Ranks int
	// Events is the target vertex (MPI event) count; generation stops at
	// the first round boundary that reaches it (default 10000).
	Events int
	// Seed makes the trace fully deterministic: the same (Ranks, Events,
	// Seed, WorkScale, ZipfS, Fragments) always digest identically.
	Seed int64
	// WorkScale multiplies all task work (default 1).
	WorkScale float64
	// ZipfS is the exponent (> 1) of the Zipf-distributed phase-task work:
	// most phases are tiny, a heavy tail dominates the makespan — the
	// size profile that makes 100k-event traces worth coarsening
	// (default 1.5; smaller = heavier tail).
	ZipfS float64
	// Fragments is the number of sub-epsilon compute slivers, separated by
	// local MPI_Wait ordering points, emitted per rank per round — the
	// chains internal/coarsen merges (default 6).
	Fragments int
}

func (p SynthParams) normalize() SynthParams {
	if p.Ranks <= 0 {
		p.Ranks = 8
	}
	if p.Events <= 0 {
		p.Events = 10000
	}
	if p.WorkScale <= 0 {
		p.WorkScale = 1
	}
	if p.ZipfS <= 1 {
		p.ZipfS = 1.5
	}
	if p.Fragments <= 0 {
		p.Fragments = 6
	}
	return p
}

// syntheticShape: a generic moderately memory-bound kernel between the
// CoMD and NAS profiles.
func syntheticShape() machine.Shape {
	return machine.Shape{
		SerialFrac:    0.03,
		MemFrac:       0.15,
		MemSatThreads: 6,
		Intensity:     0.8,
	}
}

// Synthetic generates an arbitrarily large trace with the event mix an
// instrumented production MPI code produces: per rank and round, a chain
// of sub-millisecond compute fragments separated by MPI_Wait progress
// points (the coarsening fodder), then one Zipf-tailed phase task; rounds
// exchange a ring halo and periodically synchronize on a collective. It is
// the scale harness behind `pctrace gen` and the windowed-solver exhibits:
// Events counts vertices, so -events 100000 yields a ~100k-event trace no
// monolithic LP can hold.
func Synthetic(p SynthParams) *Workload {
	p = p.normalize()
	rng := rand.New(rand.NewSource(p.Seed))
	eff := effScales(rng, p.Ranks, 0.015)
	zipf := rand.NewZipf(rng, p.ZipfS, 1, 1<<12)
	sh := syntheticShape()

	b := dag.NewBuilder(p.Ranks)
	verts := 2 // Init + Finalize
	for r := 0; r < p.Ranks; r++ {
		b.Compute(r, 0.01*p.WorkScale, sh, "setup")
	}
	// Per round, each rank adds Fragments Waits plus an Isend and a Recv.
	perRound := p.Ranks * (p.Fragments + 2)
	if p.Ranks == 1 {
		perRound = p.Fragments
	}
	for round := 0; verts+perRound <= p.Events; round++ {
		for r := 0; r < p.Ranks; r++ {
			for f := 0; f < p.Fragments; f++ {
				work := p.WorkScale * (2e-4 + 3e-4*rng.Float64())
				b.Compute(r, work, sh, "fragment")
				b.Wait(r)
				verts++
			}
			w := p.WorkScale * 1e-3 * float64(1+zipf.Uint64())
			b.Compute(r, w, sh, "phase")
		}
		if p.Ranks > 1 {
			for r := 0; r < p.Ranks; r++ {
				b.Isend(r, (r+1)%p.Ranks, 64<<10)
				verts++
			}
			for r := 0; r < p.Ranks; r++ {
				b.Recv(r, (r-1+p.Ranks)%p.Ranks)
				verts++
			}
		}
		if round%8 == 7 && verts+1 <= p.Events {
			b.Collective("sync")
			verts++
		}
	}
	return &Workload{Name: "Synthetic", Graph: b.Finalize(), EffScale: eff, Params: Params{
		Ranks: p.Ranks, Iterations: 1, Seed: p.Seed, WorkScale: p.WorkScale,
	}}
}
