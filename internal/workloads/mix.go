package workloads

import (
	"fmt"
	"strings"
)

// Named job mixes for the cluster power market (DESIGN.md §13). Each mix is
// a small fleet of jobs meant to share one site-wide power budget; the
// heterogeneous ones pair workloads with deliberately different power–time
// curves (BT's static imbalance vs SP's flat profile, CG's memory-bound
// saturation vs FT's compute appetite) so shadow prices actually diverge
// and the market has trades to make. The homogeneous mix is the control:
// identical curves mean uniform is already optimal and the market should
// tie it, not beat it.

// MixJob is one job of a named cluster mix.
type MixJob struct {
	Name     string
	Workload *Workload
}

// MixNames lists the named cluster mixes in presentation order: the
// homogeneous control first, then increasingly heterogeneous fleets.
func MixNames() []string {
	return []string{"hom-sp", "het-bt-sp", "het-4mix", "het-zipf"}
}

// Mix builds the named job mix at the given base parameters. Jobs within a
// mix draw consecutive seeds from p.Seed so no two jobs share imbalance
// noise, and every job inherits p's ranks/iterations/work scale.
func Mix(name string, p Params) ([]MixJob, error) {
	p = p.normalize()
	at := func(off int64) Params { q := p; q.Seed = p.Seed + off; return q }
	switch strings.ToLower(name) {
	case "hom-sp":
		return []MixJob{
			{Name: "sp-0", Workload: SP(at(0))},
			{Name: "sp-1", Workload: SP(at(1))},
			{Name: "sp-2", Workload: SP(at(2))},
		}, nil
	case "het-bt-sp":
		return []MixJob{
			{Name: "bt-0", Workload: BT(at(0))},
			{Name: "sp-0", Workload: SP(at(1))},
		}, nil
	case "het-4mix":
		return []MixJob{
			{Name: "sp-0", Workload: SP(at(0))},
			{Name: "bt-0", Workload: BT(at(1))},
			{Name: "cg-0", Workload: CG(at(2))},
			{Name: "ft-0", Workload: FT(at(3))},
		}, nil
	case "het-zipf":
		// The synthetic job's event budget tracks the benchmark jobs'
		// trace size (a handful of vertices per rank per iteration) so one
		// job doesn't dwarf the mix.
		return []MixJob{
			{Name: "bt-0", Workload: BT(at(0))},
			{Name: "sp-0", Workload: SP(at(1))},
			{Name: "zipf-0", Workload: Synthetic(SynthParams{
				Ranks:     p.Ranks,
				Events:    p.Ranks * (p.Iterations + 2) * 8,
				Seed:      p.Seed + 2,
				WorkScale: p.WorkScale,
				Fragments: 2,
			})},
		}, nil
	default:
		return nil, fmt.Errorf("workloads: unknown mix %q (have %v)", name, MixNames())
	}
}
