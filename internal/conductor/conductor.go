// Package conductor reimplements the Conductor adaptive power-allocation
// runtime the paper evaluates against its LP bound (Sec. 4.2, [19]).
//
// Conductor runs two mechanisms on top of the iteration structure exposed
// by MPI_Pcontrol:
//
//   - configuration exploration: during the first few iterations each rank
//     profiles candidate configurations, building per-task-class Pareto
//     frontiers (the paper discards these iterations from comparisons and
//     so do the experiments);
//   - power reallocation: at Pcontrol boundaries (every ReallocPeriod
//     iterations) it first applies an Adagio-style step — lowering
//     non-critical ranks' budgets to the minimum power that still finishes
//     their work inside the iteration span — then grants the freed power to
//     the rank it estimates to be on the critical path.
//
// Crucially, the runtime is imperfect in exactly the ways the paper
// diagnoses (Sec. 6): it reacts to the previous iteration (so workload
// noise causes allocation thrashing and induced imbalance), it can
// misidentify the critical path (the SP failure mode, controlled by
// MisIDProb), and it pays real overheads for reallocation decisions and
// configuration switches (Sec. 6.2's 566 µs and per-task DVFS costs).
package conductor

import (
	"fmt"
	"math"
	"math/rand"

	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/pareto"
	"powercap/internal/problem"
	"powercap/internal/sim"
)

// Conductor is the adaptive runtime. Zero values take paper defaults via
// New.
type Conductor struct {
	Model    *machine.Model
	EffScale []float64

	// ExploreIters is the number of leading iterations spent exploring
	// configurations (run under uniform static allocation; the paper
	// discards "the first three iterations of every application").
	ExploreIters int
	// ReallocPeriod is how many iterations pass between power
	// reallocation decisions ("after every 5-10 MPI_Pcontrol calls").
	ReallocPeriod int
	// MeasureNoise is the relative noise on per-rank busy-time
	// measurements used to estimate the critical path. On imbalanced
	// workloads the true bottleneck dominates the noise; on balanced
	// ones (SP) the ranking is essentially random, so Conductor
	// "frequently misidentifies the critical path" exactly as the paper
	// observes.
	MeasureNoise float64
	// MisIDProb is an additional per-decision probability of outright
	// misidentifying the critical rank regardless of measurements.
	MisIDProb float64
	// ReallocOverheadS is added to the makespan at every reallocation
	// ("an average overhead of 566 microseconds per invocation").
	ReallocOverheadS float64
	// SwitchOverheadS is the per-task configuration-switch cost, paid when
	// a task runs in a different configuration than its rank's previous
	// task ("a median per-task overhead of 145 microseconds").
	SwitchOverheadS float64
	// MinSwitchTaskS suppresses switches for short tasks, the replay
	// threshold of Sec. 6.1 ("we use a threshold of 1ms").
	MinSwitchTaskS float64
	// AdagioMargin is the fraction of the iteration span Adagio leaves as
	// safety margin when slowing non-critical ranks.
	AdagioMargin float64
	// BoostHeadroomFrac bounds how far above the uniform per-socket share
	// a rank's budget may rise. Conductor profiles configurations during
	// exploration *under the power cap*, so operating points drawing much
	// more than the uniform share were never observed and cannot be
	// selected — the paper's CoMD analysis shows Conductor "allocates up
	// to 32 watts per processor in contrast to the LP's 36 watts" at a
	// 30 W cap, i.e. roughly 10% headroom.
	BoostHeadroomFrac float64
	// Seed drives the misidentification draw.
	Seed int64

	fs *problem.FrontierSet
}

// NewConfigOnly returns the configuration-selection-only variant the paper
// discusses in Sec. 6: "If only the configuration selection is performed
// (but not power reallocation), there is less overhead than Conductor, but
// also lower performance due to the use of uniform power allocation."
// Budgets stay at the uniform share forever; per-task Pareto-frontier
// configuration selection (and its switch costs) still runs.
func NewConfigOnly(model *machine.Model, effScale []float64) *Conductor {
	c := New(model, effScale)
	c.ReallocPeriod = 1 << 30 // never reallocate
	c.ReallocOverheadS = 0
	return c
}

// New returns a Conductor with the paper's parameters.
func New(model *machine.Model, effScale []float64) *Conductor {
	return &Conductor{
		Model:             model,
		EffScale:          effScale,
		ExploreIters:      3,
		ReallocPeriod:     5,
		MeasureNoise:      0.01,
		MisIDProb:         0.05,
		ReallocOverheadS:  566e-6,
		SwitchOverheadS:   145e-6,
		MinSwitchTaskS:    1e-3,
		AdagioMargin:      0.01,
		BoostHeadroomFrac: 0.10,
		Seed:              1,
	}
}

func (c *Conductor) eff(rank int) float64 {
	if c.EffScale == nil || rank < 0 || rank >= len(c.EffScale) {
		return 1
	}
	return c.EffScale[rank]
}

// frontier returns the work-normalized convex frontier for a task class,
// computed and cached by the shared internal/problem frontier set — the
// same Pareto sets the LP and ILP backends price, so Conductor's runtime
// selections and the bound it is compared against never diverge on the
// configuration menu.
func (c *Conductor) frontier(shape machine.Shape, rank int) *problem.Frontier {
	if c.fs == nil {
		c.fs = problem.NewFrontierSet(c.Model, c.EffScale)
	}
	return c.fs.For(shape, rank)
}

// RunResult is the outcome of a Conductor execution.
type RunResult struct {
	// TotalS is the summed makespan of all iterations including overheads.
	TotalS float64
	// MeasuredS excludes the exploration iterations, matching how the
	// paper compares policies.
	MeasuredS float64
	// IterTimesS records each iteration's span (prologue first).
	IterTimesS []float64
	// ExploreSkipped reports how many leading slices MeasuredS excludes.
	ExploreSkipped int
	// Points are the operating points Conductor chose per original task.
	Points []sim.TaskPoint
	// Configs are the configurations behind those points (zero-valued for
	// messages and degenerate tasks).
	Configs []machine.Config
	// Reallocations counts power-reallocation invocations.
	Reallocations int
	// MisIdentified counts decisions where the wrong critical rank was
	// boosted.
	MisIdentified int
	// PeakPowerW is the highest per-iteration instantaneous job power.
	PeakPowerW float64
	// Budgets is the final per-rank power allocation.
	Budgets []float64
}

// Run executes the application under Conductor with a job-level cap.
func (c *Conductor) Run(g *dag.Graph, jobCapW float64) (*RunResult, error) {
	slices, err := dag.SliceAll(g)
	if err != nil {
		return nil, err
	}
	if len(slices) == 0 {
		return nil, fmt.Errorf("conductor: graph has no iterations")
	}
	nr := g.NumRanks
	rng := rand.New(rand.NewSource(c.Seed))

	budgets := make([]float64, nr)
	for r := range budgets {
		budgets[r] = jobCapW / float64(nr)
	}

	res := &RunResult{
		Points:  sim.Points(g),
		Configs: make([]machine.Config, len(g.Tasks)),
		Budgets: budgets,
	}

	// prevCfg tracks each rank's last configuration for switch-overhead
	// accounting across iteration boundaries.
	prevCfg := make([]machine.Config, nr)
	for r := range prevCfg {
		prevCfg[r] = machine.Config{}
	}

	sinceRealloc := 0
	for si, sl := range slices {
		exploring := si < c.ExploreIters

		iterPts := make([]sim.TaskPoint, len(sl.Graph.Tasks))
		iterCfg := make([]machine.Config, len(sl.Graph.Tasks))
		for i := range sl.Graph.Tasks {
			t := &sl.Graph.Tasks[i]
			if t.Kind == dag.Message {
				iterPts[i] = sim.TaskPoint{Duration: t.FixedDur}
				continue
			}
			if t.Work <= 0 {
				iterPts[i] = sim.TaskPoint{Duration: 0, PowerW: c.Model.IdlePower(c.eff(t.Rank))}
				continue
			}
			var cfg machine.Config
			var duty, pw float64
			if exploring {
				// Exploration runs under the uniform cap with full
				// threads (the profiling configuration assignment is
				// per-rank; its average behaviour is static-like).
				r := c.Model.CapConfig(t.Shape, c.Model.Cores, budgets[t.Rank], c.eff(t.Rank))
				cfg, duty, pw = r.Config, r.Duty, r.PowerW
			} else {
				f := c.frontier(t.Shape, t.Rank)
				if p, ok := pareto.BestUnderCap(f.Pts, budgets[t.Rank]); ok {
					idx := f.IndexOf(p)
					cfg, duty, pw = f.Cfgs[idx], 1, p.PowerW
				} else {
					// Budget below the cheapest configuration: RAPL
					// duty-cycles at the floor.
					r := c.Model.CapConfig(t.Shape, 1, budgets[t.Rank], c.eff(t.Rank))
					cfg, duty, pw = r.Config, r.Duty, r.PowerW
				}
			}
			d := c.Model.DurationDuty(t.Work, t.Shape, cfg, duty)
			if cfg != prevCfg[t.Rank] && d >= c.MinSwitchTaskS {
				d += c.SwitchOverheadS
			}
			prevCfg[t.Rank] = cfg
			iterCfg[i] = cfg
			iterPts[i] = sim.TaskPoint{Duration: d, PowerW: pw}
		}

		iterRes, err := sim.Evaluate(sl.Graph, iterPts, sim.SlackHoldsTaskPower, 0)
		if err != nil {
			return nil, err
		}
		span := iterRes.Makespan

		// Reallocation decision at the closing Pcontrol.
		sinceRealloc++
		if !exploring && sinceRealloc >= c.ReallocPeriod {
			sinceRealloc = 0
			c.reallocate(sl.Graph, iterRes, budgets, jobCapW, rng, res)
			span += c.ReallocOverheadS
			res.Reallocations++
		}

		res.IterTimesS = append(res.IterTimesS, span)
		res.TotalS += span
		if si >= c.ExploreIters {
			res.MeasuredS += span
		} else {
			res.ExploreSkipped++
		}
		if iterRes.PeakPowerW > res.PeakPowerW {
			res.PeakPowerW = iterRes.PeakPowerW
		}
		for i := range sl.Graph.Tasks {
			res.Points[sl.TaskMap[i]] = iterPts[i]
			res.Configs[sl.TaskMap[i]] = iterCfg[i]
		}
	}
	return res, nil
}

// reallocate performs the Adagio slow-down step followed by critical-path
// boosting, mutating budgets in place.
//
// Adagio reasons per task, not per rank aggregate: a rank's tasks sit
// between synchronization points, so a task may only be slowed by the
// factor by which its rank as a whole trails the critical rank — slowing
// it to "fill the iteration" would push the phase barrier and perturb the
// critical path (the co-scheduling trap of the paper's Fig. 3). Each
// non-critical rank's budget becomes the maximum over its tasks of the
// minimum power at which the task still fits its proportionally stretched
// duration; the estimated critical rank asks for its maximum useful power;
// and the results are scaled into the job cap.
func (c *Conductor) reallocate(g *dag.Graph, r *sim.Result, budgets []float64, jobCapW float64, rng *rand.Rand, res *RunResult) {
	nr := g.NumRanks
	busy := make([]float64, nr)
	for i, t := range g.Tasks {
		if t.Kind == dag.Compute {
			busy[t.Rank] += r.End[i] - r.Start[i]
		}
	}
	// Conductor reasons over noisy measurements of the previous iteration
	// (sampling error plus genuine iteration-to-iteration variation). The
	// noise corrupts both the critical-path ranking and the Adagio
	// stretch targets below — the "thrashing in the per-rank power
	// allocation (which induces load imbalance)" of Sec. 6. Near the
	// duty-cycle cliff a one-configuration planning error costs several
	// percent, which is where Conductor bleeds against the LP.
	noisy := make([]float64, nr)
	for rk := range noisy {
		noisy[rk] = busy[rk] * (1 + c.MeasureNoise*rng.NormFloat64())
	}

	// Critical rank estimation: argmax of the noisy busy measurement,
	// with an extra chance of an outright wrong pick. On balanced
	// workloads the noise swamps the true ranking and the estimate is
	// effectively random.
	crit := 0
	for rk := 1; rk < nr; rk++ {
		if noisy[rk] > noisy[crit] {
			crit = rk
		}
	}
	if nr > 1 && rng.Float64() < c.MisIDProb {
		w := rng.Intn(nr - 1)
		if w >= crit {
			w++
		}
		crit = w
	}

	// Budget ceiling: configurations drawing much above the uniform share
	// were never profiled under the cap, so Conductor cannot allocate
	// beyond this (see BoostHeadroomFrac).
	ceil := jobCapW / float64(nr)
	if c.BoostHeadroomFrac > 0 {
		ceil *= 1 + c.BoostHeadroomFrac
	}

	// Abundant power: when every rank fits at its maximum useful power,
	// there is nothing to reallocate — hand out the maxima and leave the
	// estimation machinery (and its misidentification risk) idle.
	maxSum := 0.0
	maxes := make([]float64, nr)
	for rk := 0; rk < nr; rk++ {
		maxes[rk] = math.Min(c.rankMaxPower(g, rk), ceil)
		maxSum += maxes[rk]
	}
	if maxSum <= jobCapW {
		copy(budgets, maxes)
		return
	}

	// Deadline bisection: find the smallest per-iteration compute deadline
	// T for which the sum of per-rank power needs fits the job cap. Each
	// rank's share of T is split across its tasks in proportion to their
	// measured durations (phases between synchronization points cannot
	// borrow time from each other — the co-scheduling constraint of the
	// paper's Fig. 3), and its need is the cheapest discrete frontier
	// point meeting every task's share.
	needsAt := func(T float64) ([]float64, float64) {
		needs := make([]float64, nr)
		sum := 0.0
		for rk := 0; rk < nr; rk++ {
			if busy[rk] <= 0 {
				needs[rk] = c.Model.IdlePower(c.eff(rk))
				sum += needs[rk]
				continue
			}
			needs[rk] = math.Min(c.rankPowerNeed(g, r, rk, T/noisy[rk]*(1-c.AdagioMargin)), ceil)
			sum += needs[rk]
		}
		return needs, sum
	}

	lo, hi := 0.0, 0.0
	for rk := 0; rk < nr; rk++ {
		t := c.predictBusy(g, rk, math.Min(c.rankMaxPower(g, rk), ceil))
		if t > lo {
			lo = t // fastest conceivable pacing rank
		}
		if bt := busy[rk] * 4; bt > hi {
			hi = bt
		}
	}
	if _, s := needsAt(hi); s > jobCapW {
		// Even deeply relaxed deadlines do not fit: fall back to uniform.
		for rk := range budgets {
			budgets[rk] = jobCapW / float64(nr)
		}
		return
	}
	for it := 0; it < 30; it++ {
		mid := (lo + hi) / 2
		if _, s := needsAt(mid); s <= jobCapW {
			hi = mid
		} else {
			lo = mid
		}
	}
	needs, _ := needsAt(hi)

	// Spend any leftover budget on the estimated critical rank — the
	// paper's reallocation step proper. When the critical path was
	// misidentified, Conductor additionally treats the true bottleneck as
	// a slack-rich process and nudges its allocation down roughly one
	// configuration step, handing the proceeds to the wrong rank —
	// "inappropriately reducing the power allocation to specific
	// processes … selecting suboptimal configurations for a subset of
	// tasks" (Sec. 6.4, the SP failure mode).
	truecrit := 0
	for rk := 1; rk < nr; rk++ {
		if busy[rk] > busy[truecrit] {
			truecrit = rk
		}
	}
	if crit != truecrit {
		res.MisIdentified++
		floor := c.Model.IdlePower(c.eff(truecrit))
		cut := 0.1 * (needs[truecrit] - floor)
		if cut > 0 {
			needs[truecrit] -= cut
			needs[crit] += cut
		}
	}
	sum := 0.0
	for _, n := range needs {
		sum += n
	}
	if surplus := jobCapW - sum; surplus > 0 {
		needs[crit] += surplus
	}
	if maxUse := math.Min(c.rankMaxPower(g, crit), ceil); needs[crit] > maxUse {
		needs[crit] = maxUse
	}
	copy(budgets, needs)
}

// predictBusy estimates rank rk's total compute time if every task ran at
// uniform power p on its frontier.
func (c *Conductor) predictBusy(g *dag.Graph, rk int, p float64) float64 {
	total := 0.0
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if t.Kind != dag.Compute || t.Rank != rk || t.Work <= 0 {
			continue
		}
		f := c.frontier(t.Shape, t.Rank)
		total += pareto.InterpolateTime(f.Pts, p) * t.Work
	}
	return total
}

// rankPowerNeed finds the lowest power level at which every one of rank
// rk's tasks still completes within its measured duration stretched by
// ratio (Adagio's "low-power configuration that finishes computation
// without perturbing the critical path").
func (c *Conductor) rankPowerNeed(g *dag.Graph, r *sim.Result, rk int, ratio float64) float64 {
	need := c.Model.IdlePower(c.eff(rk))
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if t.Kind != dag.Compute || t.Rank != rk || t.Work <= 0 {
			continue
		}
		allowed := (r.End[t.ID] - r.Start[t.ID]) * ratio
		f := c.frontier(t.Shape, t.Rank)
		p := minPowerFor(f, t.Work, allowed)
		if p > need {
			need = p
		}
	}
	return need
}

// minPowerFor returns the lowest-power *discrete* frontier point at which
// work completes within allowed seconds, or the frontier maximum when even
// full power is too slow. Planning over the same discrete points the
// runtime will later select keeps allocations honest: interpolated
// (continuous) planning promises times a single configuration cannot
// deliver and systematically under-allocates.
func minPowerFor(f *problem.Frontier, work, allowed float64) float64 {
	for _, p := range f.Pts {
		if p.TimeS*work <= allowed {
			return p.PowerW
		}
	}
	return f.Pts[len(f.Pts)-1].PowerW
}

// rankMaxPower is the highest power rank rk can usefully consume.
func (c *Conductor) rankMaxPower(g *dag.Graph, rk int) float64 {
	max := c.Model.IdlePower(c.eff(rk))
	for _, t := range g.Tasks {
		if t.Kind == dag.Compute && t.Rank == rk && t.Work > 0 {
			f := c.frontier(t.Shape, t.Rank)
			if p := f.Pts[len(f.Pts)-1].PowerW; p > max {
				max = p
			}
		}
	}
	return max
}
