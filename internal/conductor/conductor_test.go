package conductor

import (
	"testing"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/policy"
	"powercap/internal/workloads"
)

// sliceGraphs returns the per-iteration subgraphs of a workload.
func sliceGraphs(w *workloads.Workload) ([]*dag.Graph, error) {
	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		return nil, err
	}
	out := make([]*dag.Graph, len(slices))
	for i, s := range slices {
		out[i] = s.Graph
	}
	return out, nil
}

func btInstance() *workloads.Workload {
	return workloads.BT(workloads.Params{Ranks: 4, Iterations: 8, Seed: 5, WorkScale: 0.3})
}

func TestConductorRespectsJobCap(t *testing.T) {
	w := btInstance()
	c := New(machine.Default(), w.EffScale)
	for _, perSocket := range []float64{30, 45, 60} {
		jobCap := perSocket * float64(w.Graph.NumRanks)
		res, err := c.Run(w.Graph, jobCap)
		if err != nil {
			t.Fatal(err)
		}
		if res.PeakPowerW > jobCap+1e-6 {
			t.Fatalf("per-socket %v: peak %v exceeds job cap %v", perSocket, res.PeakPowerW, jobCap)
		}
		if res.TotalS <= 0 || res.MeasuredS <= 0 {
			t.Fatalf("per-socket %v: empty result %+v", perSocket, res)
		}
		if res.MeasuredS >= res.TotalS {
			t.Fatal("measured time should exclude exploration iterations")
		}
	}
}

func TestConductorBeatsStaticOnImbalance(t *testing.T) {
	// BT's load imbalance is exactly what Conductor exploits: after
	// exploration it must beat uniform Static at a tight cap (paper
	// Fig. 13 shows ~50% improvement at 30 W).
	w := btInstance()
	m := machine.Default()
	c := New(m, w.EffScale)
	st := policy.NewStatic(m, w.EffScale)

	perSocket := 30.0
	jobCap := perSocket * float64(w.Graph.NumRanks)
	cres, err := c.Run(w.Graph, jobCap)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := st.Run(w.Graph, perSocket)
	if err != nil {
		t.Fatal(err)
	}
	// Compare post-exploration iterations only, as the paper does.
	staticMeasured := measuredStatic(t, w, st, perSocket, cres.ExploreSkipped)
	if cres.MeasuredS >= staticMeasured {
		t.Fatalf("Conductor (%v) did not beat Static (%v) on imbalanced BT at %v W", cres.MeasuredS, staticMeasured, perSocket)
	}
	_ = sres
}

// measuredStatic evaluates Static per iteration and sums the same slices
// Conductor counts.
func measuredStatic(t *testing.T, w *workloads.Workload, st *policy.Static, perSocket float64, skip int) float64 {
	t.Helper()
	total := 0.0
	slices, err := sliceGraphs(w)
	if err != nil {
		t.Fatal(err)
	}
	for i, sl := range slices {
		if i < skip {
			continue
		}
		r, err := st.Run(sl, perSocket)
		if err != nil {
			t.Fatal(err)
		}
		total += r.Makespan
	}
	return total
}

func TestConductorNeverBeatsLP(t *testing.T) {
	// The LP is the theoretical bound; Conductor must not outrun it on
	// the measured iterations.
	w := btInstance()
	m := machine.Default()
	c := New(m, w.EffScale)
	lp := core.NewSolver(m, w.EffScale)

	perSocket := 35.0
	jobCap := perSocket * float64(w.Graph.NumRanks)
	cres, err := c.Run(w.Graph, jobCap)
	if err != nil {
		t.Fatal(err)
	}
	slices, err := sliceGraphs(w)
	if err != nil {
		t.Fatal(err)
	}
	lpTotal := 0.0
	for i, sl := range slices {
		if i < cres.ExploreSkipped {
			continue
		}
		s, err := lp.Solve(sl, jobCap)
		if err != nil {
			t.Fatal(err)
		}
		lpTotal += s.MakespanS
	}
	if cres.MeasuredS < lpTotal*(1-1e-9) {
		t.Fatalf("Conductor (%v) beat the LP bound (%v)", cres.MeasuredS, lpTotal)
	}
}

func TestMisIDHurts(t *testing.T) {
	// Forcing every critical-path decision wrong must not help.
	w := btInstance()
	m := machine.Default()
	good := New(m, w.EffScale)
	good.MisIDProb = 0
	bad := New(m, w.EffScale)
	bad.MisIDProb = 1

	jobCap := 30.0 * float64(w.Graph.NumRanks)
	gres, err := good.Run(w.Graph, jobCap)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := bad.Run(w.Graph, jobCap)
	if err != nil {
		t.Fatal(err)
	}
	if bres.MisIdentified == 0 {
		t.Fatal("MisIDProb=1 produced no misidentifications")
	}
	if bres.MeasuredS < gres.MeasuredS*(1-1e-9) {
		t.Fatalf("always-wrong critical path (%v) beat always-right (%v)", bres.MeasuredS, gres.MeasuredS)
	}
}

func TestOverheadsAccumulate(t *testing.T) {
	w := btInstance()
	m := machine.Default()
	free := New(m, w.EffScale)
	free.ReallocOverheadS = 0
	free.SwitchOverheadS = 0
	costly := New(m, w.EffScale)
	costly.ReallocOverheadS = 5e-3
	costly.SwitchOverheadS = 2e-3

	jobCap := 40.0 * float64(w.Graph.NumRanks)
	fres, err := free.Run(w.Graph, jobCap)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := costly.Run(w.Graph, jobCap)
	if err != nil {
		t.Fatal(err)
	}
	if cres.TotalS <= fres.TotalS {
		t.Fatalf("overheads did not increase runtime: %v vs %v", cres.TotalS, fres.TotalS)
	}
}

func TestReallocationsHappen(t *testing.T) {
	w := btInstance()
	c := New(machine.Default(), w.EffScale)
	c.ReallocPeriod = 2
	res, err := c.Run(w.Graph, 50*float64(w.Graph.NumRanks))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reallocations == 0 {
		t.Fatal("no reallocation decisions made")
	}
	sum := 0.0
	for _, b := range res.Budgets {
		sum += b
	}
	if sum > 50*float64(w.Graph.NumRanks)+1e-6 {
		t.Fatalf("final budgets (%v) exceed the job cap", sum)
	}
}

func TestConfigOnlyBetweenStaticAndConductor(t *testing.T) {
	// Configuration selection without reallocation: beats Static when
	// better-than-8-thread configs exist under the uniform share, but
	// cannot exploit imbalance, so full Conductor beats it on BT.
	w := workloads.BT(workloads.Params{Ranks: 4, Iterations: 10, Seed: 5, WorkScale: 0.3})
	m := machine.Default()
	perSocket := 30.0
	jobCap := perSocket * 4

	full := New(m, w.EffScale)
	cfgOnly := NewConfigOnly(m, w.EffScale)
	fres, err := full.Run(w.Graph, jobCap)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := cfgOnly.Run(w.Graph, jobCap)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Reallocations != 0 {
		t.Fatalf("config-only performed %d reallocations", cres.Reallocations)
	}
	st := policy.NewStatic(m, w.EffScale)
	staticTotal := measuredStatic(t, w, st, perSocket, cres.ExploreSkipped)

	// At the 30 W duty-cliff, escaping 8 threads already wins big.
	if cres.MeasuredS >= staticTotal {
		t.Fatalf("config-only (%v) did not beat Static (%v) at the duty cliff", cres.MeasuredS, staticTotal)
	}
	// But reallocation adds more on an imbalanced workload.
	if fres.MeasuredS >= cres.MeasuredS {
		t.Fatalf("full Conductor (%v) did not beat config-only (%v) on imbalanced BT", fres.MeasuredS, cres.MeasuredS)
	}
}
