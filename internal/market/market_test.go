package market

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"powercap/internal/core"
	"powercap/internal/machine"
	"powercap/internal/workloads"
)

func job(t *testing.T, name string, w *workloads.Workload) Job {
	t.Helper()
	s := core.NewSolver(machine.Default(), w.EffScale)
	cs, err := s.NewCapSession(context.Background(), w.Graph)
	if err != nil {
		t.Fatalf("session for %s: %v", name, err)
	}
	return Job{Name: name, Session: cs}
}

// Small heterogeneous mix: SP is communication-heavy (flat curve saturates
// early), BT compute-heavy (steep curve), CG in between. Sized for the
// 1-CPU test runner.
func hetJobs(t *testing.T) []Job {
	t.Helper()
	p := workloads.Params{Ranks: 4, Iterations: 3, Seed: 2, WorkScale: 0.3}
	return []Job{
		job(t, "sp", workloads.SP(p)),
		job(t, "bt", workloads.BT(p)),
		job(t, "cg", workloads.CG(p)),
	}
}

// A budget below the sum of per-job feasibility floors must fail with the
// typed *BudgetError naming every job's floor, largest first.
func TestBudgetBelowFloorSum(t *testing.T) {
	jobs := hetJobs(t)
	_, err := Allocate(context.Background(), jobs, 30, Options{Policy: Market})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *BudgetError", err)
	}
	if be.BudgetW != 30 {
		t.Errorf("BudgetW = %g, want 30", be.BudgetW)
	}
	if be.FloorSumW <= 30 {
		t.Errorf("FloorSumW = %g, should exceed the 30 W budget", be.FloorSumW)
	}
	if len(be.Floors) != len(jobs) {
		t.Fatalf("Floors names %d jobs, want %d", len(be.Floors), len(jobs))
	}
	names := map[string]bool{}
	var sum float64
	for i, f := range be.Floors {
		names[f.Name] = true
		sum += f.FloorW
		if i > 0 && f.FloorW > be.Floors[i-1].FloorW {
			t.Errorf("Floors not sorted largest-first: %v", be.Floors)
		}
	}
	for _, j := range jobs {
		if !names[j.Name] {
			t.Errorf("floor list missing job %q", j.Name)
		}
	}
	if math.Abs(sum-be.FloorSumW) > 1e-9 {
		t.Errorf("FloorSumW %g != sum of listed floors %g", be.FloorSumW, sum)
	}
	if !strings.Contains(be.Error(), "bt") {
		t.Errorf("error text should name binding jobs: %q", be.Error())
	}
}

// A one-job cluster must reduce to the plain single-job solve: the whole
// budget goes to the job and its makespan matches a fresh whole-graph solve
// at that cap to 1e-9.
func TestOneJobEqualsPlainSolve(t *testing.T) {
	w := workloads.BT(workloads.Params{Ranks: 4, Iterations: 3, Seed: 5, WorkScale: 0.3})
	const budget = 150
	for _, pol := range Policies() {
		a, err := Allocate(context.Background(), []Job{job(t, "only", w)}, budget, Options{Policy: pol})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if len(a.Jobs) != 1 {
			t.Fatalf("%s: %d jobs in result", pol, len(a.Jobs))
		}
		got := a.Jobs[0]
		// Auction stops granting once the job saturates; everyone else
		// hands the single job the full budget.
		wantCap := float64(budget)
		if pol == Auction && got.CapW < budget {
			wantCap = got.CapW
			if got.MarginalSecPerW < -1e-6 {
				t.Errorf("auction under-granted a non-saturated job: cap %.1f marginal %g", got.CapW, got.MarginalSecPerW)
			}
		}
		want, werr := core.NewSolver(machine.Default(), w.EffScale).Solve(w.Graph, wantCap)
		if werr != nil {
			t.Fatalf("%s: fresh solve: %v", pol, werr)
		}
		if rel := math.Abs(got.MakespanS-want.MakespanS) / want.MakespanS; rel > 1e-9 {
			t.Errorf("%s: one-job makespan %.12f vs plain solve %.12f (rel %.2e)",
				pol, got.MakespanS, want.MakespanS, rel)
		}
		if math.Abs(a.TotalMakespanS-got.MakespanS) > 1e-12 {
			t.Errorf("%s: total %.12f != only job %.12f", pol, a.TotalMakespanS, got.MakespanS)
		}
	}
}

// Convergence property: when the market reports Converged, the recomputed
// marginal-value spread (steepest job minus flattest donor) is within the
// tolerance, and the reported FinalSpreadSecPerW agrees.
func TestMarketConvergenceProperty(t *testing.T) {
	opts := Options{Policy: Market, ToleranceSecPerW: 1e-3, MaxIterations: 80}
	a, err := Allocate(context.Background(), hetJobs(t), 260, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Converged {
		t.Fatalf("market did not converge in %d iterations (spread %g)", a.Iterations, a.FinalSpreadSecPerW)
	}
	maxM := math.Inf(-1)
	minDonor := math.Inf(1)
	for _, j := range a.Jobs {
		if j.Degraded {
			t.Fatalf("job %s degraded: %s", j.Name, j.Reason)
		}
		m := math.Max(0, -j.MarginalSecPerW)
		maxM = math.Max(maxM, m)
		if j.CapW-j.FloorW > 0.05 {
			minDonor = math.Min(minDonor, m)
		}
	}
	sp := 0.0
	if !math.IsInf(maxM, -1) && !math.IsInf(minDonor, 1) {
		sp = math.Max(0, maxM-minDonor)
	}
	if sp > opts.ToleranceSecPerW+1e-12 {
		t.Errorf("converged with recomputed spread %g > tolerance %g", sp, opts.ToleranceSecPerW)
	}
	if math.Abs(sp-a.FinalSpreadSecPerW) > 1e-9 {
		t.Errorf("FinalSpreadSecPerW %g != recomputed %g", a.FinalSpreadSecPerW, sp)
	}
}

// The market starts from the uniform split and only accepts improving
// transfers, so on any mix — heterogeneous or not — its total makespan is
// never worse than uniform's, and on this heterogeneous mix it must be
// strictly better.
func TestMarketNeverWorseThanUniform(t *testing.T) {
	const budget = 260
	uni, err := Allocate(context.Background(), hetJobs(t), budget, Options{Policy: Uniform})
	if err != nil {
		t.Fatal(err)
	}
	mkt, err := Allocate(context.Background(), hetJobs(t), budget, Options{Policy: Market})
	if err != nil {
		t.Fatal(err)
	}
	if mkt.TotalMakespanS > uni.TotalMakespanS*(1+1e-9) {
		t.Errorf("market total %.6f worse than uniform %.6f", mkt.TotalMakespanS, uni.TotalMakespanS)
	}
	if mkt.TotalMakespanS >= uni.TotalMakespanS-1e-9 {
		t.Errorf("market %.6f not strictly better than uniform %.6f on a heterogeneous mix",
			mkt.TotalMakespanS, uni.TotalMakespanS)
	}
	if mkt.MovedW <= 0 {
		t.Errorf("market moved no watts on a heterogeneous mix")
	}
	// Accepted transfers must strictly descend in total makespan.
	last := math.Inf(1)
	for _, tr := range mkt.Transfers {
		if tr.Accepted {
			if tr.TotalMakespanS >= last {
				t.Errorf("iteration %d: accepted transfer did not reduce total (%.9f → %.9f)",
					tr.Iteration, last, tr.TotalMakespanS)
			}
			last = tr.TotalMakespanS
		}
	}
}

// Every policy must respect the budget and per-job floors.
func TestPoliciesRespectBudgetAndFloors(t *testing.T) {
	const budget = 240
	for _, pol := range Policies() {
		a, err := Allocate(context.Background(), hetJobs(t), budget, Options{Policy: pol})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		var sum float64
		for _, j := range a.Jobs {
			if j.CapW < j.FloorW-1e-9 {
				t.Errorf("%s: job %s cap %.3f below floor %.3f", pol, j.Name, j.CapW, j.FloorW)
			}
			if j.Schedule == nil {
				t.Errorf("%s: job %s has no schedule", pol, j.Name)
			}
			sum += j.CapW
		}
		if sum > budget+1e-6 {
			t.Errorf("%s: allocated %.3f W over the %d W budget", pol, sum, budget)
		}
		if a.Solves == 0 {
			t.Errorf("%s: zero solves recorded", pol)
		}
	}
}

// Structural validation errors.
func TestAllocateRejectsBadInput(t *testing.T) {
	w := workloads.CG(workloads.Params{Ranks: 4, Iterations: 2, Seed: 1, WorkScale: 0.3})
	good := job(t, "a", w)
	cases := []struct {
		name   string
		jobs   []Job
		budget float64
		opts   Options
	}{
		{"no jobs", nil, 100, Options{}},
		{"zero budget", []Job{good}, 0, Options{}},
		{"nan budget", []Job{good}, math.NaN(), Options{}},
		{"empty name", []Job{{Name: "", Session: good.Session}}, 100, Options{}},
		{"dup names", []Job{good, {Name: "a", Session: good.Session}}, 100, Options{}},
		{"nil session", []Job{{Name: "x"}}, 100, Options{}},
		{"bad policy", []Job{good}, 100, Options{Policy: "vickrey"}},
	}
	for _, tc := range cases {
		if _, err := Allocate(context.Background(), tc.jobs, tc.budget, tc.opts); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// Cancellation surfaces instead of degrading jobs.
func TestAllocateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Allocate(ctx, hetJobs(t), 260, Options{Policy: Market})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled in chain", err)
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy(""); err != nil || p != Market {
		t.Errorf("empty policy: got %v/%v, want market default", p, err)
	}
	if p, err := ParsePolicy(" Uniform "); err != nil || p != Uniform {
		t.Errorf("case/space-insensitive parse failed: %v/%v", p, err)
	}
	if _, err := ParsePolicy("round-robin"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// A session that breaks down mid-market must degrade its job (frozen at the
// last-good cap) without failing the allocation.
type flakySession struct {
	inner     Session
	failAfter int
	calls     int
}

func (f *flakySession) SolveAt(ctx context.Context, capW float64) (*core.Schedule, error) {
	f.calls++
	if f.calls > f.failAfter {
		return nil, errors.New("injected breakdown")
	}
	return f.inner.SolveAt(ctx, capW)
}
func (f *flakySession) FixedFloorW() float64 { return f.inner.FixedFloorW() }
func (f *flakySession) Stats() core.Stats    { return f.inner.Stats() }

func TestMarketDegradesBrokenJob(t *testing.T) {
	jobs := hetJobs(t)
	// Let floor+demand discovery succeed (~17 deterministic solves on this
	// mix), then break during trading (the full market run takes ~29).
	jobs[1].Session = &flakySession{inner: jobs[1].Session, failAfter: 20}
	a, err := Allocate(context.Background(), jobs, 260, Options{Policy: Market})
	if err != nil {
		t.Fatalf("allocation failed instead of degrading: %v", err)
	}
	degraded := 0
	for _, j := range a.Jobs {
		if j.Degraded {
			degraded++
			if j.Reason == "" {
				t.Errorf("degraded job %s has no reason", j.Name)
			}
			if j.Schedule == nil {
				t.Errorf("degraded job %s lost its last-good schedule", j.Name)
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no job degraded despite injected breakdown")
	}
}
