// Package market implements the cluster power market: a site-wide power
// budget divided across N concurrent jobs, each an independent
// fixed-vertex-order LP (internal/core) exposing its power–time curve and
// its shadow price dT/dW. The paper's motivating setting is explicit —
// "total machine power will be divided across multiple simultaneous jobs" —
// and the LP duals are exactly the marginal information a divider needs:
// a job on a steep region of its curve buys more time per watt than a job
// on a flat one, so watts should flow from flat to steep until marginal
// values equalize. That is the runtime power-shifting idea of Medhat et
// al.'s "Power Redistribution for Optimizing Performance in MPI Clusters"
// (and the paper's Conductor baseline), lifted from sockets within a job to
// jobs within a cluster.
//
// Because each job's LP value function T_j(W) is convex and non-increasing
// in the cap (the cap enters only constraint right-hand sides), minimizing
// the cluster's total makespan Σ_j T_j(W_j) subject to Σ_j W_j ≤ B and
// per-job feasibility floors is a convex allocation problem whose KKT
// condition is equal marginal value across all jobs not pinned at a bound.
// The market policy reaches it by monotone improvement: repeated
// donor→receiver watt transfers, each accepted only if the summed makespan
// drops, with step halving on overshoot. Every probe of a job's curve is a
// warm dual-simplex re-solve on that job's core.CapSession — the LP is
// built once per job, and successive cap adjustments cost a handful of
// pivots, not cold solves.
package market

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"powercap/internal/core"
	"powercap/internal/obs"
)

// Policy names a budget-splitting strategy.
type Policy string

const (
	// Uniform splits the budget into equal shares (clamped up to each
	// job's feasibility floor) — the site-wide analogue of the paper's
	// Static per-socket capping, and the baseline the market must beat.
	Uniform Policy = "uniform"
	// Proportional splits the budget in proportion to each job's power
	// demand (the saturation cap beyond which extra watts stop buying
	// time), clamped to floors.
	Proportional Policy = "proportional"
	// Market starts from the uniform split and iteratively moves watts
	// from the job with the flattest power–time curve to the job with the
	// steepest until marginal values equalize within tolerance or floors
	// bind. Transfers are accepted only when the total makespan drops, so
	// the market result is never worse than the uniform split.
	Market Policy = "market"
	// Auction starts every job at its feasibility floor and greedily
	// grants fixed watt quanta to the currently steepest bidder until the
	// budget is spent — a cheaper, coarser approximation of Market.
	Auction Policy = "auction"
)

// Policies lists the accepted policy names.
func Policies() []Policy { return []Policy{Uniform, Proportional, Market, Auction} }

// ParsePolicy validates a policy name (case-insensitive).
func ParsePolicy(name string) (Policy, error) {
	p := Policy(strings.ToLower(strings.TrimSpace(name)))
	if p == "" {
		return Market, nil
	}
	for _, q := range Policies() {
		if p == q {
			return q, nil
		}
	}
	return "", fmt.Errorf("market: unknown policy %q (want one of %v)", name, Policies())
}

// Session is one job's re-solvable power–time curve: SolveAt probes the
// curve at a cap (warm-started; ErrInfeasible below the feasibility floor),
// FixedFloorW is a free lower bound on any feasible cap, and Stats reports
// accumulated solver effort. core.CapSession implements it.
type Session interface {
	SolveAt(ctx context.Context, capW float64) (*core.Schedule, error)
	FixedFloorW() float64
	Stats() core.Stats
}

// Job is one participant in the allocation.
type Job struct {
	// Name identifies the job in traces and errors; names must be unique
	// within one Allocate call.
	Name string
	// Session solves the job's LP at a given cap.
	Session Session
}

// Options tunes Allocate. The zero value uses the defaults documented per
// field.
type Options struct {
	// Policy selects the splitting strategy (default Market).
	Policy Policy
	// ToleranceSecPerW is the market's convergence tolerance: iteration
	// stops once the spread between the steepest job's marginal value and
	// the flattest donor's is at most this (default 1e-3 s/W).
	ToleranceSecPerW float64
	// MaxIterations bounds market/auction iterations (default 64).
	MaxIterations int
	// FloorResolutionW is the bisection resolution for per-job feasibility
	// floors; the reported floor is the feasible end of the final bracket,
	// so every cap the allocator hands out is known-feasible (default 0.5).
	FloorResolutionW float64
	// MinTransferW is the smallest watt transfer the market attempts;
	// once step halving drops below it, iteration stops (default 0.05).
	MinTransferW float64
}

func (o Options) normalize() (Options, error) {
	p, err := ParsePolicy(string(o.Policy))
	if err != nil {
		return o, err
	}
	o.Policy = p
	if o.ToleranceSecPerW <= 0 {
		o.ToleranceSecPerW = 1e-3
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 64
	}
	if o.FloorResolutionW <= 0 {
		o.FloorResolutionW = 0.5
	}
	if o.MinTransferW <= 0 {
		o.MinTransferW = 0.05
	}
	return o, nil
}

// BudgetError reports a budget below the sum of per-job feasibility floors:
// no split can schedule every job. Floors names each job's floor, largest
// first — the binding constraints an operator would shed load from.
type BudgetError struct {
	BudgetW   float64
	FloorSumW float64
	Floors    []JobFloor
}

// JobFloor is one job's discovered minimum feasible power.
type JobFloor struct {
	Name   string
	FloorW float64
}

func (e *BudgetError) Error() string {
	parts := make([]string, len(e.Floors))
	for i, f := range e.Floors {
		parts[i] = fmt.Sprintf("%s≥%.1fW", f.Name, f.FloorW)
	}
	return fmt.Sprintf("market: budget %.1f W below the %.1f W sum of per-job feasibility floors (%s)",
		e.BudgetW, e.FloorSumW, strings.Join(parts, ", "))
}

// JobAllocation is one job's final slice of the budget.
type JobAllocation struct {
	Name string
	// CapW is the job-level power cap this job was granted.
	CapW float64
	// FloorW is the discovered minimum feasible power (bisection over
	// ErrInfeasible, reported at the feasible end of the final bracket).
	FloorW float64
	// DemandW is the saturation cap: the (bisected) smallest cap at which
	// the job's marginal value is ≈ 0, i.e. the watts the job can actually
	// convert into time.
	DemandW float64
	// MakespanS and MarginalSecPerW are the job's LP bound and shadow
	// price at CapW.
	MakespanS       float64
	MarginalSecPerW float64
	// Schedule is the full LP schedule at CapW.
	Schedule *core.Schedule
	// Degraded marks a job whose session broke down mid-allocation; its
	// cap was frozen at the last successful solve and it was excluded from
	// further trading. Reason carries the failure.
	Degraded bool
	Reason   string
}

// Transfer is one market iteration's attempted watt movement, recorded for
// the allocation trace.
type Transfer struct {
	Iteration int
	From, To  string
	Watts     float64
	// SpreadSecPerW is the marginal-value spread before the transfer.
	SpreadSecPerW float64
	// TotalMakespanS is the summed makespan after the transfer (after
	// revert, when not accepted).
	TotalMakespanS float64
	Accepted       bool
}

// Allocation is a solved cluster split.
type Allocation struct {
	Policy  Policy
	BudgetW float64
	// Jobs is in input order.
	Jobs []JobAllocation
	// TotalMakespanS is the summed per-job makespan — the objective the
	// market minimizes (jobs occupy disjoint sockets, so the sum is the
	// cluster's aggregate time-to-solution). MaxMakespanS is the slowest
	// job, for operators who care about the batch tail.
	TotalMakespanS float64
	MaxMakespanS   float64
	// Iterations counts market/auction rounds (0 for uniform and
	// proportional). Converged reports the market reached its
	// marginal-spread tolerance; FinalSpreadSecPerW is the spread at
	// termination.
	Iterations         int
	Converged          bool
	FinalSpreadSecPerW float64
	// MovedW is the accepted watt-volume redistributed away from the
	// starting split. Transfers is the full trace.
	MovedW    float64
	Transfers []Transfer
	// Solves counts LP re-solves across the whole allocation (floor and
	// demand bisections included); Stats aggregates their solver effort.
	Solves int
	Stats  core.Stats
}

// state is the allocator's per-job working record.
type state struct {
	job    Job
	floorW float64
	demand float64
	capW   float64
	sched  *core.Schedule // last successful solve at capW
	bad    bool           // session broke down; frozen and excluded
	reason string
	solves int
}

// m is the job's marginal value of power in s/W: how much total time one
// more watt buys (non-negative; 0 once saturated).
func (st *state) m() float64 {
	if st.sched == nil {
		return 0
	}
	if v := -st.sched.MarginalSecPerW; v > 0 {
		return v
	}
	return 0
}

// Allocate divides budgetW across jobs under opts.Policy. Job names must be
// non-empty and unique. The error is reserved for structural problems
// (bad options, duplicate names, a *BudgetError budget below the floor sum,
// cancellation, or a job failing before any successful solve); per-job
// mid-allocation breakdowns degrade that job instead (JobAllocation.Degraded).
func Allocate(ctx context.Context, jobs []Job, budgetW float64, opts Options) (*Allocation, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, errors.New("market: no jobs")
	}
	if budgetW <= 0 || math.IsNaN(budgetW) || math.IsInf(budgetW, 0) {
		return nil, fmt.Errorf("market: budget %g W must be positive and finite", budgetW)
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Name == "" {
			return nil, errors.New("market: job with empty name")
		}
		if seen[j.Name] {
			return nil, fmt.Errorf("market: duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		if j.Session == nil {
			return nil, fmt.Errorf("market: job %q has no session", j.Name)
		}
	}

	actx, span := obs.Start(ctx, "market.allocate")
	defer span.End()
	span.SetAttr("policy", string(opts.Policy))
	span.SetAttr("jobs", len(jobs))
	span.SetAttr("budget_w", budgetW)

	a := &Allocation{Policy: opts.Policy, BudgetW: budgetW}
	sts := make([]*state, len(jobs))
	for i, j := range jobs {
		sts[i] = &state{job: j}
	}

	// Phase 1: discover each job's feasibility floor and saturation demand
	// by bisection over its session. Every cap handed out later is at or
	// above the floor's feasible end, so allocation probes cannot go
	// infeasible except through numerical breakdown.
	if err := discoverCurves(actx, sts, budgetW, opts); err != nil {
		return nil, err
	}
	var floorSum float64
	for _, st := range sts {
		floorSum += st.floorW
	}
	if floorSum > budgetW {
		be := &BudgetError{BudgetW: budgetW, FloorSumW: floorSum}
		for _, st := range sts {
			be.Floors = append(be.Floors, JobFloor{Name: st.job.Name, FloorW: st.floorW})
		}
		sort.Slice(be.Floors, func(i, j int) bool {
			if be.Floors[i].FloorW != be.Floors[j].FloorW {
				return be.Floors[i].FloorW > be.Floors[j].FloorW
			}
			return be.Floors[i].Name < be.Floors[j].Name
		})
		return nil, be
	}

	// Phase 2: the policy's split.
	switch opts.Policy {
	case Uniform:
		assign(sts, uniformSplit(sts, budgetW))
	case Proportional:
		assign(sts, proportionalSplit(sts, budgetW))
	case Market:
		assign(sts, uniformSplit(sts, budgetW))
		if err := solveAll(actx, sts); err != nil {
			return nil, err
		}
		if err := runMarket(actx, a, sts, opts); err != nil {
			return nil, err
		}
	case Auction:
		if err := runAuction(actx, a, sts, budgetW, opts); err != nil {
			return nil, err
		}
	}
	if err := solveAll(actx, sts); err != nil {
		return nil, err
	}

	// Phase 3: assemble.
	for _, st := range sts {
		ja := JobAllocation{
			Name:     st.job.Name,
			CapW:     st.capW,
			FloorW:   st.floorW,
			DemandW:  st.demand,
			Degraded: st.bad,
			Reason:   st.reason,
		}
		if st.sched != nil {
			ja.MakespanS = st.sched.MakespanS
			ja.MarginalSecPerW = st.sched.MarginalSecPerW
			ja.Schedule = st.sched
			a.TotalMakespanS += st.sched.MakespanS
			if st.sched.MakespanS > a.MaxMakespanS {
				a.MaxMakespanS = st.sched.MakespanS
			}
		}
		a.Jobs = append(a.Jobs, ja)
		a.Solves += st.solves
		a.Stats.Add(st.job.Session.Stats())
	}
	if opts.Policy == Uniform || opts.Policy == Proportional {
		a.Converged = true // nothing iterative to converge
		a.FinalSpreadSecPerW = spread(sts, opts)
	}
	span.SetAttr("iterations", a.Iterations)
	span.SetAttr("total_makespan_s", a.TotalMakespanS)
	return a, nil
}

// discoverCurves bisects each job's feasibility floor and saturation
// demand. Floors are mandatory; a job whose session cannot complete floor
// discovery fails the whole allocation (there is no last-good state to
// freeze yet).
func discoverCurves(ctx context.Context, sts []*state, budgetW float64, opts Options) error {
	for _, st := range sts {
		fctx, sp := obs.Start(ctx, "market.floor")
		sp.SetAttr("job", st.job.Name)
		err := discoverJob(fctx, st, budgetW, opts)
		sp.SetAttr("floor_w", st.floorW)
		sp.SetAttr("demand_w", st.demand)
		sp.End()
		if err != nil {
			return fmt.Errorf("market: job %q: %w", st.job.Name, err)
		}
	}
	return nil
}

func discoverJob(ctx context.Context, st *state, budgetW float64, opts Options) error {
	// Exponential search up from the fixed floor for any feasible cap.
	lo := st.job.Session.FixedFloorW()
	if lo < 0 {
		lo = 0
	}
	hi := lo + 8
	var hiSched *core.Schedule
	for range 24 {
		sched, err := st.job.Session.SolveAt(ctx, hi)
		st.solves++
		if err == nil {
			hiSched = sched
			break
		}
		if !errors.Is(err, core.ErrInfeasible) {
			return err
		}
		lo = hi
		hi *= 2
	}
	if hiSched == nil {
		return fmt.Errorf("no feasible cap found up to %.0f W", hi)
	}

	// Bisect the floor: lo infeasible (or the fixed floor), hi feasible.
	floorSched := hiSched
	floorW := hi
	for hi-lo > opts.FloorResolutionW {
		mid := (lo + hi) / 2
		sched, err := st.job.Session.SolveAt(ctx, mid)
		st.solves++
		switch {
		case err == nil:
			hi, floorW, floorSched = mid, mid, sched
		case errors.Is(err, core.ErrInfeasible):
			lo = mid
		default:
			return err
		}
	}
	st.floorW = floorW
	st.capW = floorW
	st.sched = floorSched

	// Bisect the saturation demand: the smallest cap with ≈ zero marginal.
	// |dT/dW| is non-increasing in the cap (T is convex), so the predicate
	// "marginal ≈ 0" is monotone. Search above the floor, doubling until
	// saturated.
	const satEps = 1e-9
	lo = floorW
	hi = math.Max(2*floorW, floorW+16)
	var hiM float64 = math.Inf(1)
	for range 24 {
		sched, err := st.job.Session.SolveAt(ctx, hi)
		st.solves++
		if err != nil {
			return err
		}
		hiM = -sched.MarginalSecPerW
		if hiM <= satEps {
			break
		}
		lo = hi
		hi *= 2
	}
	if hiM > satEps {
		st.demand = hi // never saturates in range; treat the cap as demand
		return nil
	}
	for hi-lo > math.Max(opts.FloorResolutionW, 1) {
		mid := (lo + hi) / 2
		sched, err := st.job.Session.SolveAt(ctx, mid)
		st.solves++
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) {
				lo = mid // numerically brittle edge; keep the feasible side
				continue
			}
			return err
		}
		if -sched.MarginalSecPerW <= satEps {
			hi = mid
		} else {
			lo = mid
		}
	}
	st.demand = hi
	return nil
}

// uniformSplit gives every job an equal share, clamped up to floors with
// the residue re-split equally among the unclamped (water-filling on a
// flat profile).
func uniformSplit(sts []*state, budgetW float64) []float64 {
	caps := make([]float64, len(sts))
	clamped := make([]bool, len(sts))
	for {
		var fixed float64
		free := 0
		for i, st := range sts {
			if clamped[i] {
				fixed += st.floorW
			} else {
				free++
			}
		}
		if free == 0 {
			break
		}
		share := (budgetW - fixed) / float64(free)
		again := false
		for i, st := range sts {
			if !clamped[i] && share < st.floorW {
				clamped[i] = true
				again = true
			}
		}
		if !again {
			for i, st := range sts {
				if clamped[i] {
					caps[i] = st.floorW
				} else {
					caps[i] = share
				}
			}
			break
		}
	}
	return caps
}

// proportionalSplit divides the budget in proportion to saturation demand,
// clamped up to floors the same way.
func proportionalSplit(sts []*state, budgetW float64) []float64 {
	caps := make([]float64, len(sts))
	clamped := make([]bool, len(sts))
	for {
		var fixed, wsum float64
		free := 0
		for i, st := range sts {
			if clamped[i] {
				fixed += st.floorW
			} else {
				wsum += st.demand
				free++
			}
		}
		if free == 0 {
			break
		}
		again := false
		for i, st := range sts {
			if clamped[i] {
				continue
			}
			share := (budgetW - fixed) / float64(free)
			if wsum > 0 {
				share = (budgetW - fixed) * st.demand / wsum
			}
			if share < st.floorW {
				clamped[i] = true
				again = true
			} else {
				caps[i] = share
			}
		}
		if !again {
			for i, st := range sts {
				if clamped[i] {
					caps[i] = st.floorW
				}
			}
			break
		}
	}
	return caps
}

func assign(sts []*state, caps []float64) {
	for i, st := range sts {
		st.capW = caps[i]
	}
}

// solveAll brings every non-degraded job's schedule up to date with its
// cap. Jobs already solved at their cap are skipped (the market leaves most
// jobs' schedules current).
func solveAll(ctx context.Context, sts []*state) error {
	for _, st := range sts {
		if st.bad || (st.sched != nil && st.sched.CapW == st.capW) {
			continue
		}
		sched, err := st.job.Session.SolveAt(ctx, st.capW)
		st.solves++
		if err != nil {
			if degradeJob(st, err) {
				continue
			}
			return fmt.Errorf("market: job %q at %.1f W: %w", st.job.Name, st.capW, err)
		}
		st.sched = sched
	}
	return nil
}

// degradeJob freezes a job at its last successful solve after a session
// breakdown, excluding it from further trading. Cancellation is never
// degraded — it must surface. Returns false when there is no last-good
// state to freeze (the caller fails the allocation).
func degradeJob(st *state, err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if st.sched == nil {
		return false
	}
	st.bad = true
	st.reason = err.Error()
	st.capW = st.sched.CapW
	return true
}

// spread is the current marginal-value spread: the steepest job's marginal
// minus the flattest *donor*'s (a job pinned at its floor cannot give, so
// its flatness is irrelevant). 0 when no transfer is possible.
func spread(sts []*state, opts Options) float64 {
	maxM := math.Inf(-1)
	minDonor := math.Inf(1)
	for _, st := range sts {
		if st.bad {
			continue
		}
		maxM = math.Max(maxM, st.m())
		if st.capW-st.floorW > opts.MinTransferW {
			minDonor = math.Min(minDonor, st.m())
		}
	}
	if math.IsInf(maxM, -1) || math.IsInf(minDonor, 1) {
		return 0
	}
	if s := maxM - minDonor; s > 0 {
		return s
	}
	return 0
}

// runMarket iterates donor→receiver transfers from the current (uniform)
// split until the marginal spread is within tolerance, floors bind, or the
// iteration budget runs out. Each accepted transfer strictly reduces the
// summed makespan, so the market never finishes worse than its start.
func runMarket(ctx context.Context, a *Allocation, sts []*state, opts Options) error {
	total := func() float64 {
		var t float64
		for _, st := range sts {
			if st.sched != nil {
				t += st.sched.MakespanS
			}
		}
		return t
	}

	// Initial step: a healthy fraction of the tradeable watts.
	var tradeable float64
	for _, st := range sts {
		tradeable += st.capW - st.floorW
	}
	step := tradeable / float64(4*len(sts))
	if step < opts.MinTransferW {
		step = opts.MinTransferW
	}
	maxStep := step * 4

	cur := total()
	for a.Iterations < opts.MaxIterations {
		sp := spread(sts, opts)
		a.FinalSpreadSecPerW = sp
		if sp <= opts.ToleranceSecPerW {
			a.Converged = true
			return nil
		}

		// Pick the steepest receiver and the flattest donor able to give.
		var donor, recv *state
		for _, st := range sts {
			if st.bad {
				continue
			}
			if recv == nil || st.m() > recv.m() {
				recv = st
			}
			if st.capW-st.floorW > opts.MinTransferW && (donor == nil || st.m() < donor.m()) {
				donor = st
			}
		}
		if donor == nil || recv == nil || donor == recv {
			a.Converged = sp <= opts.ToleranceSecPerW
			return nil
		}

		a.Iterations++
		ictx, span := obs.Start(ctx, "market.iteration")
		span.SetAttr("iter", a.Iterations)
		span.SetAttr("from", donor.job.Name)
		span.SetAttr("to", recv.job.Name)
		d := math.Min(step, donor.capW-donor.floorW)
		accepted, newTotal, err := tryTransfer(ictx, donor, recv, d, cur)
		span.SetAttr("watts", d)
		span.SetAttr("accepted", accepted)
		span.End()
		if err != nil {
			// A breakdown mid-transfer degrades the failing job (frozen at
			// its last-good cap and schedule) and the market trades on.
			if !degradeJob(donor, err) && !degradeJob(recv, err) {
				return fmt.Errorf("market: transfer %s→%s: %w", donor.job.Name, recv.job.Name, err)
			}
			continue
		}
		a.Transfers = append(a.Transfers, Transfer{
			Iteration:      a.Iterations,
			From:           donor.job.Name,
			To:             recv.job.Name,
			Watts:          d,
			SpreadSecPerW:  sp,
			TotalMakespanS: newTotal,
			Accepted:       accepted,
		})
		if accepted {
			a.MovedW += d
			cur = newTotal
			if step *= 1.5; step > maxStep {
				step = maxStep
			}
		} else {
			if step /= 2; step < opts.MinTransferW {
				a.FinalSpreadSecPerW = spread(sts, opts)
				a.Converged = a.FinalSpreadSecPerW <= opts.ToleranceSecPerW
				return nil
			}
		}
	}
	a.FinalSpreadSecPerW = spread(sts, opts)
	a.Converged = a.FinalSpreadSecPerW <= opts.ToleranceSecPerW
	return nil
}

// tryTransfer moves d watts from donor to recv, re-solves both, and keeps
// the move only if the summed makespan dropped; otherwise both jobs revert
// to their previous caps and schedules (no re-solve needed — the old
// Schedule values are still valid for the old caps).
func tryTransfer(ctx context.Context, donor, recv *state, d, curTotal float64) (accepted bool, newTotal float64, err error) {
	oldDonor, oldRecv := *donor, *recv
	donor.capW -= d
	recv.capW += d

	dSched, err := donor.job.Session.SolveAt(ctx, donor.capW)
	if err != nil {
		*donor, *recv = oldDonor, oldRecv
		donor.solves++
		return false, curTotal, err
	}
	rSched, err := recv.job.Session.SolveAt(ctx, recv.capW)
	if err != nil {
		*donor, *recv = oldDonor, oldRecv
		donor.solves++
		recv.solves++
		return false, curTotal, err
	}

	delta := (dSched.MakespanS + rSched.MakespanS) - (oldDonor.sched.MakespanS + oldRecv.sched.MakespanS)
	if delta < -1e-12 {
		donor.sched, recv.sched = dSched, rSched
		donor.solves++
		recv.solves++
		return true, curTotal + delta, nil
	}
	*donor, *recv = oldDonor, oldRecv
	donor.solves++ // keep the probe solves counted on the reverted states
	recv.solves++
	return false, curTotal, nil
}

// runAuction starts every job at its floor and greedily grants fixed watt
// quanta to the steepest current bidder until the budget is spent or all
// bidders saturate.
func runAuction(ctx context.Context, a *Allocation, sts []*state, budgetW float64, opts Options) error {
	var spent float64
	for _, st := range sts {
		st.capW = st.floorW
		spent += st.floorW
	}
	if err := solveAll(ctx, sts); err != nil {
		return err
	}
	remaining := budgetW - spent
	quantum := remaining / float64(8*len(sts))
	if quantum < opts.MinTransferW {
		quantum = opts.MinTransferW
	}
	for remaining >= opts.MinTransferW && a.Iterations < opts.MaxIterations*4 {
		var best *state
		for _, st := range sts {
			if st.bad {
				continue
			}
			if best == nil || st.m() > best.m() {
				best = st
			}
		}
		if best == nil || best.m() <= 0 {
			break // every bidder saturated; leftover watts stay unspent
		}
		a.Iterations++
		g := math.Min(quantum, remaining)
		best.capW += g
		sched, err := best.job.Session.SolveAt(ctx, best.capW)
		best.solves++
		if err != nil {
			best.capW -= g
			if degradeJob(best, err) {
				continue
			}
			return fmt.Errorf("market: auction grant to %q: %w", best.job.Name, err)
		}
		best.sched = sched
		remaining -= g
		a.MovedW += g
	}
	a.FinalSpreadSecPerW = spread(sts, opts)
	a.Converged = true
	return nil
}
