package adapt

import (
	"testing"
	"time"
)

func TestTokenBucketDrainAndRefill(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewTokenBucket(3, 1) // 3 tokens, 1/s refill

	for i := 0; i < 3; i++ {
		if !b.TakeAt(t0) {
			t.Fatalf("take %d: bucket dry too early", i)
		}
	}
	if b.TakeAt(t0) {
		t.Fatal("take beyond capacity succeeded")
	}

	// Half a second refills half a token: still dry.
	if b.TakeAt(t0.Add(500 * time.Millisecond)) {
		t.Fatal("half-refilled bucket granted a token")
	}
	// A full second from t0 crosses 1 token.
	if !b.TakeAt(t0.Add(1100 * time.Millisecond)) {
		t.Fatal("refilled bucket refused a token")
	}

	// Refill clamps at capacity.
	if got := b.TokensAt(t0.Add(time.Hour)); got != 3 {
		t.Fatalf("tokens after an hour = %v, want capacity 3", got)
	}
}

func TestTokenBucketRateRetarget(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewTokenBucket(10, 0)
	for i := 0; i < 10; i++ {
		b.TakeAt(t0)
	}
	// Zero rate: never refills.
	if got := b.TokensAt(t0.Add(time.Hour)); got != 0 {
		t.Fatalf("zero-rate bucket refilled to %v", got)
	}
	// Retarget to the observed completion rate.
	b.SetRate(4)
	if got := b.TokensAt(t0.Add(time.Hour + 2*time.Second)); got != 8 {
		t.Fatalf("tokens 2s after retarget = %v, want 8", got)
	}
}

func TestTokenBucketClockNeverRewinds(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewTokenBucket(2, 1)
	b.TakeAt(t0)
	// An earlier timestamp must not mint tokens or corrupt state.
	if got := b.TokensAt(t0.Add(-time.Hour)); got != 1 {
		t.Fatalf("tokens after clock rewind = %v, want 1", got)
	}
	if got := b.TokensAt(t0.Add(time.Second)); got != 2 {
		t.Fatalf("tokens after recovery = %v, want 2", got)
	}
}
