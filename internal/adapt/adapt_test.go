package adapt

import (
	"reflect"
	"testing"
)

func testConfig() Config {
	return Config{
		Enabled:    true,
		Workers:    4,
		QueueDepth: 16,
		CacheSize:  8,
	}
}

// sig builds one epoch's Signals with the given pressure, encoded through
// queue occupancy (QueueCap 1000 keeps the rounding exact to 3 decimals).
func sig(p float64, breakersOpen int) Signals {
	return Signals{
		Requests:     100,
		QueueLen:     int(p * 1000),
		QueueCap:     1000,
		BreakersOpen: breakersOpen,
		EpochS:       1,
	}
}

// TestHysteresisTable drives the controller through scripted pressure
// phases and checks the rung at each phase boundary plus the total
// transition count — the boundary behavior of ISSUE satellite 3.
func TestHysteresisTable(t *testing.T) {
	type phase struct {
		epochs   int
		p        float64
		breakers int
		wantRung Rung
	}
	cases := []struct {
		name      string
		phases    []phase
		wantTrans uint64
	}{
		{
			// Defaults: enter 0.5 / exit 0.15, dwell 2/3, min-dwell 2.
			name: "below enter threshold never descends",
			phases: []phase{
				{epochs: 50, p: 0.49, wantRung: RungFull},
			},
			wantTrans: 0,
		},
		{
			name: "at enter threshold descends after dwell",
			phases: []phase{
				{epochs: 1, p: 0.5, wantRung: RungFull}, // dwell 1 < EnterDwell
				{epochs: 1, p: 0.5, wantRung: RungRealizeDown},
			},
			wantTrans: 1,
		},
		{
			name: "one hot epoch is not enough",
			phases: []phase{
				{epochs: 1, p: 0.9, wantRung: RungFull},
				{epochs: 10, p: 0.3, wantRung: RungFull}, // middle band resets dwell
				{epochs: 1, p: 0.9, wantRung: RungFull},
				{epochs: 10, p: 0.3, wantRung: RungFull},
			},
			wantTrans: 0,
		},
		{
			name: "exit needs to clear the low threshold",
			phases: []phase{
				{epochs: 2, p: 0.9, wantRung: RungRealizeDown},
				// 0.16 is calm but above ExitPressure: parked, no ascent.
				{epochs: 30, p: 0.16, wantRung: RungRealizeDown},
				// Truly low pressure ascends after ExitDwell=3.
				{epochs: 3, p: 0.1, wantRung: RungFull},
			},
			wantTrans: 2,
		},
		{
			name: "min dwell paces a sustained overload descent",
			phases: []phase{
				// EnterDwell=2 and MinDwell=2: one rung per 2 epochs.
				{epochs: 2, p: 1.0, wantRung: RungRealizeDown},
				{epochs: 2, p: 1.0, wantRung: RungCoarsen},
				{epochs: 2, p: 1.0, wantRung: RungWindowed},
				{epochs: 2, p: 1.0, wantRung: RungHeuristic},
				// Max rung clamps; pressure can push no further.
				{epochs: 20, p: 1.0, wantRung: RungHeuristic},
			},
			wantTrans: 4,
		},
		{
			name: "recovery walks all the way back to full fidelity",
			phases: []phase{
				{epochs: 8, p: 1.0, wantRung: RungHeuristic},
				// ExitDwell=3 paces the ascent: one rung per 3 epochs.
				{epochs: 3, p: 0.0, wantRung: RungWindowed},
				{epochs: 3, p: 0.0, wantRung: RungCoarsen},
				{epochs: 3, p: 0.0, wantRung: RungRealizeDown},
				{epochs: 3, p: 0.0, wantRung: RungFull},
				{epochs: 20, p: 0.0, wantRung: RungFull},
			},
			wantTrans: 8,
		},
		{
			name: "open breaker saturates pressure",
			phases: []phase{
				{epochs: 2, p: 0.0, breakers: 1, wantRung: RungRealizeDown},
			},
			wantTrans: 1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(testConfig())
			for pi, ph := range tc.phases {
				var st *State
				for e := 0; e < ph.epochs; e++ {
					st, _ = c.Step(sig(ph.p, ph.breakers))
				}
				if st.Rung != ph.wantRung {
					t.Fatalf("phase %d (p=%.2f ×%d): rung %v, want %v",
						pi, ph.p, ph.epochs, st.Rung, ph.wantRung)
				}
			}
			if got := c.Transitions(); got != tc.wantTrans {
				t.Errorf("transitions = %d, want %d", got, tc.wantTrans)
			}
		})
	}
}

// TestFlapSuppression oscillates the signal hard across the whole band
// every epoch; the dwell counters must reset each time and the rung must
// never move.
func TestFlapSuppression(t *testing.T) {
	c := New(testConfig())
	for i := 0; i < 200; i++ {
		p := 0.0
		if i%2 == 0 {
			p = 0.95
		}
		st, trans := c.Step(sig(p, 0))
		if len(trans) != 0 {
			t.Fatalf("epoch %d: unexpected transition %+v", i, trans)
		}
		if st.Rung != RungFull {
			t.Fatalf("epoch %d: rung %v, want full", i, st.Rung)
		}
	}
	// A slower oscillation that still never holds EnterDwell consecutive
	// hot epochs: hot, hot is needed; hot, mid, hot, mid never descends.
	c = New(testConfig())
	for i := 0; i < 200; i++ {
		p := 0.3 // middle band: resets both counters
		if i%2 == 0 {
			p = 1.0
		}
		if st, _ := c.Step(sig(p, 0)); st.Rung != RungFull {
			t.Fatalf("epoch %d: rung %v, want full", i, st.Rung)
		}
	}
	if got := c.Transitions(); got != 0 {
		t.Errorf("transitions = %d, want 0", got)
	}
}

// TestDrainSnapsUpAndRefusesDescent covers satellite 2's controller half:
// BeginDrain snaps to full fidelity, reports the pre-snap state in its
// checkpoint, and every later epoch refuses to brown out again no matter
// the pressure.
func TestDrainSnapsUpAndRefusesDescent(t *testing.T) {
	c := New(testConfig())
	for i := 0; i < 6; i++ {
		c.Step(sig(1.0, 0)) // descend to RungWindowed
	}
	if r := c.State().Rung; r != RungWindowed {
		t.Fatalf("setup: rung %v, want windowed", r)
	}

	ck := c.BeginDrain()
	if ck.Rung != RungWindowed || ck.RungName != "windowed" {
		t.Errorf("checkpoint rung = %v (%q), want windowed", ck.Rung, ck.RungName)
	}
	if ck.Epoch != 6 {
		t.Errorf("checkpoint epoch = %d, want 6", ck.Epoch)
	}
	st := c.State()
	if st.Rung != RungFull || !st.Draining {
		t.Fatalf("post-drain state = rung %v draining %v, want full/true", st.Rung, st.Draining)
	}

	// Maximum pressure after drain: still no descent.
	for i := 0; i < 20; i++ {
		st, trans := c.Step(sig(1.0, 2))
		if len(trans) != 0 || st.Rung != RungFull {
			t.Fatalf("epoch %d after drain: rung %v trans %v, want full/none", i, st.Rung, trans)
		}
	}

	// BeginDrain is idempotent; the second checkpoint sees the snap.
	if ck2 := c.BeginDrain(); ck2.Rung != RungFull {
		t.Errorf("second checkpoint rung = %v, want full", ck2.Rung)
	}
}

// TestKnobDerivation checks the published knob targets at each rung:
// shedding + shrunken queue + tightened deadline slices under brownout,
// everything back at baseline on rung 0.
func TestKnobDerivation(t *testing.T) {
	cfg := testConfig()
	c := New(cfg)

	st := c.State()
	if st.Shedding || st.QueueDepth != 16 || st.DeadlineFracs != nil ||
		st.CoarsenEps != 0 || st.Windows != 0 {
		t.Fatalf("rung 0 state not at baseline: %+v", st)
	}

	want := []struct {
		rung    Rung
		queue   int
		coarsen bool
		windows bool
	}{
		{RungRealizeDown, 8, false, false},
		{RungCoarsen, 4, true, false},
		{RungWindowed, 2, true, true},
		{RungHeuristic, 2, true, true}, // MinQueue=2 floor
	}
	for _, w := range want {
		for c.State().Rung != w.rung {
			c.Step(sig(1.0, 0))
		}
		st := c.State()
		if !st.Shedding {
			t.Errorf("rung %v: shedding off", w.rung)
		}
		if st.QueueDepth != w.queue {
			t.Errorf("rung %v: queue depth %d, want %d", w.rung, st.QueueDepth, w.queue)
		}
		if (st.CoarsenEps > 0) != w.coarsen {
			t.Errorf("rung %v: coarsen eps %v, want set=%v", w.rung, st.CoarsenEps, w.coarsen)
		}
		if (st.Windows > 1) != w.windows {
			t.Errorf("rung %v: windows %v, want set=%v", w.rung, st.Windows, w.windows)
		}
		if st.DeadlineFracs == nil {
			t.Errorf("rung %v: deadline fracs not tightened", w.rung)
		}
	}

	// Recovery resets every knob to baseline.
	for c.State().Rung != RungFull {
		c.Step(sig(0, 0))
	}
	st = c.State()
	if st.Shedding || st.QueueDepth != 16 || st.DeadlineFracs != nil || st.CoarsenEps != 0 || st.Windows != 0 {
		t.Fatalf("post-recovery state not at baseline: %+v", st)
	}
}

// TestWorkerCutHysteresis: an open breaker halves the worker pool; the
// pool is only restored after ExitDwell calm epochs, so a flapping
// breaker cannot bounce the pool size every epoch.
func TestWorkerCutHysteresis(t *testing.T) {
	c := New(testConfig()) // Workers=4
	st, _ := c.Step(sig(0, 1))
	if st.Workers != 2 {
		t.Fatalf("workers with open breaker = %d, want 2", st.Workers)
	}
	// One calm epoch is not enough (ExitDwell=3).
	st, _ = c.Step(sig(0, 0))
	if st.Workers != 2 {
		t.Fatalf("workers after 1 calm epoch = %d, want still 2", st.Workers)
	}
	// Breaker reopens: the calm counter resets.
	c.Step(sig(0, 1))
	c.Step(sig(0, 0))
	st, _ = c.Step(sig(0, 0))
	if st.Workers != 2 {
		t.Fatalf("workers after interrupted calm = %d, want still 2", st.Workers)
	}
	st, _ = c.Step(sig(0, 0))
	if st.Workers != 4 {
		t.Fatalf("workers after full calm dwell = %d, want 4", st.Workers)
	}
}

// TestCacheSizing: sustained miss thrash grows the cache (bounded by
// MaxCacheFactor), and a quiet cache shrinks back to baseline.
func TestCacheSizing(t *testing.T) {
	c := New(testConfig()) // CacheSize=8, MaxCacheFactor=4
	thrash := Signals{Requests: 100, CacheMisses: 100, QueueCap: 1000, EpochS: 1}
	var st *State
	for i := 0; i < 10; i++ {
		st, _ = c.Step(thrash)
	}
	if st.CacheSize != 32 {
		t.Fatalf("cache after thrash = %d, want 32 (8×4 cap)", st.CacheSize)
	}
	quiet := Signals{Requests: 100, QueueCap: 1000, EpochS: 1}
	for i := 0; i < 10; i++ {
		st, _ = c.Step(quiet)
	}
	if st.CacheSize != 8 {
		t.Fatalf("cache after quiet = %d, want 8", st.CacheSize)
	}
}

// TestSolveEWMA: the shedding estimator tracks solve latency smoothly and
// ignores empty epochs.
func TestSolveEWMA(t *testing.T) {
	c := New(testConfig())
	st, _ := c.Step(Signals{AvgSolveS: 0.1, QueueCap: 100})
	if st.EstSolveS != 0.1 {
		t.Fatalf("first sample: est = %v, want 0.1", st.EstSolveS)
	}
	st, _ = c.Step(Signals{QueueCap: 100}) // no solves this epoch
	if st.EstSolveS != 0.1 {
		t.Fatalf("empty epoch moved the estimate: %v", st.EstSolveS)
	}
	st, _ = c.Step(Signals{AvgSolveS: 0.2, QueueCap: 100})
	want := 0.7*0.1 + 0.3*0.2
	if diff := st.EstSolveS - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("EWMA = %v, want %v", st.EstSolveS, want)
	}
}

// TestPressureTerms checks each term of the pressure scalar in isolation.
func TestPressureTerms(t *testing.T) {
	cfg := testConfig().withDefaults()
	cases := []struct {
		name string
		sig  Signals
		want float64
	}{
		{"idle", Signals{}, 0},
		{"rejections", Signals{Requests: 100, Rejected: 30}, 0.3},
		{"sheds count as rejections", Signals{Requests: 100, Rejected: 10, Shed: 20}, 0.3},
		{"queue occupancy", Signals{QueueLen: 70, QueueCap: 100}, 0.7},
		{"open breaker saturates", Signals{BreakersOpen: 1}, 1.0},
		{"max not sum", Signals{Requests: 100, Rejected: 30, QueueLen: 70, QueueCap: 100}, 0.7},
	}
	for _, tc := range cases {
		if got := cfg.Pressure(tc.sig); got != tc.want {
			t.Errorf("%s: pressure = %v, want %v", tc.name, got, tc.want)
		}
	}

	// The latency term needs an explicit target.
	cfg.TargetP95S = 0.1
	if got := cfg.Pressure(Signals{ReqP95S: 0.1}); got != 0 {
		t.Errorf("p95 at target: pressure = %v, want 0", got)
	}
	if got := cfg.Pressure(Signals{ReqP95S: 0.15}); got < 0.499 || got > 0.501 {
		t.Errorf("p95 at 1.5× target: pressure = %v, want ≈0.5", got)
	}
	if got := cfg.Pressure(Signals{ReqP95S: 1.0}); got != 1.0 {
		t.Errorf("p95 far past target: pressure = %v, want saturated 1.0", got)
	}
}

// TestDeterminism: identical signal sequences yield identical state
// sequences — the property the twin's regression replay rests on.
func TestDeterminism(t *testing.T) {
	seq := make([]Signals, 0, 300)
	for i := 0; i < 300; i++ {
		p := float64(i%17) / 16.0
		s := sig(p, 0)
		s.AvgSolveS = 0.001 * float64(i%5)
		s.CacheMisses = uint64(i % 13)
		seq = append(seq, s)
	}
	a, b := New(testConfig()), New(testConfig())
	for i, s := range seq {
		sa, ta := a.Step(s)
		sb, tb := b.Step(s)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("epoch %d: states diverge: %+v vs %+v", i, sa, sb)
		}
		if len(ta) != len(tb) {
			t.Fatalf("epoch %d: transitions diverge", i)
		}
	}
}
