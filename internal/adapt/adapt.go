// Package adapt is pcschedd's overload control plane: an epoch-based
// feedback controller that watches signals the service already emits for
// free (rejection rate, queue occupancy, breaker states, solve latency)
// and adapts the service's operational knobs — admission capacity, worker
// count, cache size, resilience deadline slices — plus a *brownout ladder*
// that progressively routes traffic onto cheaper solve modes under
// sustained pressure (DESIGN.md §15).
//
// The controller itself is a pure, deterministic state machine: Step takes
// one epoch's worth of Signals and returns the new published State. All
// time is epoch-counted, never wall-clock, so hysteresis behavior is
// exactly table-testable. The service samples its counters, calls Step
// once per epoch, and applies the returned State; with the controller
// disabled the service never loads anything from this package on the hot
// path beyond one nil atomic pointer check, mirroring the disarmed paths
// of internal/obs and internal/faultinject.
//
// Guardrails, in precedence order:
//
//  1. `?degraded=forbid` beats every brownout rung — the service must not
//     brown out such a request (enforced service-side; the State carries
//     the rung, the request carries the veto).
//  2. Brownout results are never cached (enforced service-side via
//     non-cacheable flights on a rung-scoped key).
//  3. Recovery snaps back: sustained low pressure always walks the ladder
//     up, and BeginDrain snaps straight to full fidelity and refuses any
//     further descent.
//  4. The LP pricing rule (steepest edge) is never part of the ladder:
//     brownout changes *what* is solved, not *how well* the solver prices.
package adapt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Rung is a brownout fidelity level. Rung 0 is full fidelity; each higher
// rung swaps in a cheaper solve mode. The LP pricing rule is never part of
// this ladder.
type Rung int

const (
	// RungFull serves every request exactly as asked.
	RungFull Rung = iota
	// RungRealizeDown downgrades expensive realization strategies
	// ("best", "replay") to the cheapest one ("down").
	RungRealizeDown
	// RungCoarsen additionally merges short same-rank task chains below
	// a time epsilon before solving (smaller LP, bounded bound-gap).
	RungCoarsen
	// RungWindowed additionally slices the event order into overlapping
	// windows solved independently (much smaller LPs, stitched bound).
	RungWindowed
	// RungHeuristic serves the slack-aware heuristic schedule only — no
	// LP at all. Results are marked degraded and never cached.
	RungHeuristic

	numRungs
)

// MaxRung is the deepest brownout rung.
const MaxRung = numRungs - 1

func (r Rung) String() string {
	switch r {
	case RungFull:
		return "full"
	case RungRealizeDown:
		return "realize-down"
	case RungCoarsen:
		return "coarsen"
	case RungWindowed:
		return "windowed"
	case RungHeuristic:
		return "heuristic"
	}
	return fmt.Sprintf("rung(%d)", int(r))
}

// Config parameterizes the controller. The zero value is unusable; call
// (*Config).withDefaults via New, which fills every unset field.
type Config struct {
	// Enabled arms the control plane. When false the service publishes a
	// nil State and behaves bit-identically to a build without this
	// package.
	Enabled bool

	// Epoch is the sampling interval of the service's controller loop.
	// The controller itself never reads clocks; this is plumbing for the
	// loop owner.
	Epoch time.Duration

	// Baseline knob values (the service's configured statics). The
	// controller adapts *around* these and snaps back to them.
	Workers    int
	QueueDepth int
	CacheSize  int

	// EnterPressure / ExitPressure are the hysteresis band: pressure at
	// or above EnterPressure for EnterDwell consecutive epochs descends
	// one rung; pressure at or below ExitPressure for ExitDwell
	// consecutive epochs ascends one rung. Between the two thresholds
	// both dwell counters reset, which is what suppresses flapping on an
	// oscillating signal.
	EnterPressure float64
	ExitPressure  float64
	EnterDwell    int
	ExitDwell     int
	// MinDwell is the minimum number of epochs between any two rung
	// transitions, in either direction.
	MinDwell int

	// TargetP95S contributes a latency term to pressure: p95 request
	// latency at 2× target saturates the term at 1. Zero disables it.
	// Superseded by the SLO burn term whenever Signals carries SLO
	// samples — the burn rate is windowed (it recovers after an incident,
	// where the cumulative p95 never does) and folds availability in.
	TargetP95S float64

	// BurnSaturation is the SLO burn rate at which the burn term saturates
	// pressure at 1 (default 10: consuming error budget at 10× the
	// sustainable rate is a full-pressure emergency). The term is linear
	// below that, so burn 1 — exactly sustainable — contributes only 0.1.
	BurnSaturation float64

	// Brownout solve-mode parameters applied at the corresponding rungs.
	CoarsenEps float64 // RungCoarsen+: coarsening epsilon (seconds)
	Windows    int     // RungWindowed+: windowed-decomposition window count

	// MinWorkers / MinQueue floor the adapted knobs.
	MinWorkers int
	MinQueue   int
	// MaxCacheFactor bounds adaptive cache growth to
	// CacheSize × MaxCacheFactor (rounded up to a power-of-two factor).
	MaxCacheFactor int

	// PressureFracs replaces the resilience ladder's DeadlineFracs while
	// any brownout rung is active: tighter early-rung slices keep more
	// of the request budget in reserve for the fallback rungs.
	PressureFracs []float64

	// MaxRetryAfterS clamps the Retry-After hint on 429 responses.
	MaxRetryAfterS int
	// RetryBurst is the retry-budget token bucket capacity; its refill
	// rate tracks the observed solve completion rate. Zero defaults to
	// Workers+QueueDepth.
	RetryBurst int
}

// withDefaults returns cfg with every unset field filled in.
func (cfg Config) withDefaults() Config {
	if cfg.Epoch <= 0 {
		cfg.Epoch = time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1
	}
	if cfg.EnterPressure <= 0 {
		cfg.EnterPressure = 0.5
	}
	if cfg.ExitPressure <= 0 {
		cfg.ExitPressure = 0.15
	}
	if cfg.EnterDwell <= 0 {
		cfg.EnterDwell = 2
	}
	if cfg.ExitDwell <= 0 {
		cfg.ExitDwell = 3
	}
	if cfg.MinDwell <= 0 {
		cfg.MinDwell = 2
	}
	if cfg.CoarsenEps <= 0 {
		cfg.CoarsenEps = 0.002
	}
	if cfg.Windows <= 1 {
		cfg.Windows = 4
	}
	if cfg.MinWorkers <= 0 {
		cfg.MinWorkers = 1
	}
	if cfg.MinQueue <= 0 {
		cfg.MinQueue = 2
	}
	if cfg.MaxCacheFactor <= 0 {
		cfg.MaxCacheFactor = 4
	}
	if cfg.PressureFracs == nil {
		cfg.PressureFracs = []float64{0.3, 0.3, 0.4, 0.6, 1.0}
	}
	if cfg.MaxRetryAfterS <= 0 {
		cfg.MaxRetryAfterS = 30
	}
	if cfg.BurnSaturation <= 0 {
		cfg.BurnSaturation = 10
	}
	if cfg.RetryBurst <= 0 {
		cfg.RetryBurst = cfg.Workers + cfg.QueueDepth
	}
	return cfg
}

// Signals is one epoch's observation of the service. Counter fields are
// per-epoch deltas; the rest are instantaneous gauges sampled at epoch
// end. All of it comes from counters the service already maintains —
// the controller adds no probes of its own.
type Signals struct {
	Requests    uint64 // API requests seen this epoch
	Rejected    uint64 // 429s from queue-full admission
	Shed        uint64 // 429s from controller shedding (deadline + retry budget)
	Solves      uint64 // backend solves completed
	CacheHits   uint64
	CacheMisses uint64
	Panics      uint64 // recovered worker panics
	Retries     uint64 // ladder retry attempts

	QueueLen     int // admission tokens currently held (effective)
	QueueCap     int // effective admission capacity
	Inflight     int
	BreakersOpen int // rung breakers currently open across pooled systems

	AvgSolveS float64 // mean backend solve latency this epoch; 0 = no sample
	ReqP95S   float64 // p95 end-to-end request latency
	EpochS    float64 // measured epoch length in seconds (defaults to cfg.Epoch)

	// SLOBurn is the worst fast-window error-budget burn rate across the
	// service's objectives (see internal/slo), and SLOSamples the number
	// of fast-window observations behind it. When SLOSamples > 0 the burn
	// term replaces the raw-p95 term in Pressure: the controller descends
	// because the error budget is burning, which the flight recorder can
	// show per request, rather than because a cumulative histogram
	// remembers an old incident.
	SLOBurn    float64
	SLOSamples uint64
}

// rejectFrac is the fraction of this epoch's requests turned away.
func (s Signals) rejectFrac() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Rejected+s.Shed) / float64(s.Requests)
}

// queueFrac is the instantaneous admission occupancy.
func (s Signals) queueFrac() float64 {
	if s.QueueCap <= 0 {
		return 0
	}
	f := float64(s.QueueLen) / float64(s.QueueCap)
	if f > 1 {
		f = 1
	}
	return f
}

// Pressure folds the epoch's signals into one scalar in [0, 1+]. It is the
// max, not the sum, of its terms: any single saturated term means the
// service is in trouble, and max keeps each threshold independently
// interpretable in tests.
func (cfg Config) Pressure(s Signals) float64 {
	p := s.rejectFrac()
	if q := s.queueFrac(); q > p {
		p = q
	}
	if s.BreakersOpen > 0 && p < 1 {
		p = 1
	}
	switch {
	case s.SLOSamples > 0:
		// Error-budget burn, linear to saturation (see BurnSaturation).
		bt := s.SLOBurn / cfg.BurnSaturation
		if bt > 1 {
			bt = 1
		}
		if bt > p {
			p = bt
		}
	case cfg.TargetP95S > 0 && s.ReqP95S > 0:
		// Legacy latency term for callers without an SLO engine:
		// 0 at target, saturates at 2× target.
		lt := (s.ReqP95S - cfg.TargetP95S) / cfg.TargetP95S
		if lt > 1 {
			lt = 1
		}
		if lt > p {
			p = lt
		}
	}
	return p
}

// State is one epoch's published control decision. The service holds it in
// an atomic.Pointer; nil means the controller is off and every knob is at
// its configured static value.
type State struct {
	Epoch uint64
	Rung  Rung

	// Brownout solve-mode overrides (zero values at RungFull).
	CoarsenEps float64
	Windows    int

	// Effective knob targets.
	Workers    int
	QueueDepth int
	CacheSize  int

	// DeadlineFracs overrides the resilience ladder's per-rung deadline
	// slices; nil means "use the configured default".
	DeadlineFracs []float64

	// EstSolveS is the controller's EWMA estimate of one solve's
	// latency, used for deadline-aware shedding.
	EstSolveS float64

	// Shedding enables deadline-aware admission shedding (requests that
	// cannot finish inside their remaining budget are 429d up front).
	Shedding bool

	// Pressure is the scalar the decision was made on (for /healthz and
	// logs).
	Pressure float64

	// Draining is set once BeginDrain has run: the ladder is pinned at
	// full fidelity and the retry budget stops gating (every remaining
	// request is a goodbye).
	Draining bool
}

// Transition records one rung change for logs and metrics.
type Transition struct {
	Epoch uint64
	From  Rung
	To    Rung
	Why   string
}

// Checkpoint is the controller's final-epoch summary, logged at drain.
type Checkpoint struct {
	Epoch       uint64  `json:"epoch"`
	Rung        Rung    `json:"-"`
	RungName    string  `json:"rung"`
	Transitions uint64  `json:"transitions"`
	EstSolveS   float64 `json:"est_solve_s"`
	Pressure    float64 `json:"pressure"`
}

// Controller is the epoch state machine. One goroutine calls Step; any
// goroutine may read State or call BeginDrain.
type Controller struct {
	cfg Config

	mu          sync.Mutex
	epoch       uint64
	rung        Rung
	above       int // consecutive epochs at/above EnterPressure
	below       int // consecutive epochs at/below ExitPressure
	sinceTrans  int // epochs since the last rung transition
	brkCalm     int // consecutive epochs with zero open breakers
	workersCut  bool
	cacheBoost  int // cache capacity multiplier exponent (0..maxBoost)
	cacheHot    int // consecutive thrashing epochs
	cacheCold   int // consecutive quiet epochs
	est         float64
	lastP       float64
	transitions uint64
	draining    bool

	state atomic.Pointer[State]
}

// New builds a controller and publishes its initial full-fidelity State.
func New(cfg Config) *Controller {
	c := &Controller{cfg: cfg.withDefaults()}
	c.state.Store(c.derive())
	return c
}

// Config returns the controller's effective (default-filled) config.
func (c *Controller) Config() Config { return c.cfg }

// State returns the most recently published decision.
func (c *Controller) State() *State { return c.state.Load() }

// Transitions returns the total rung transitions taken so far.
func (c *Controller) Transitions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.transitions
}

// Step advances the controller by one epoch. It is deterministic: the same
// sequence of Signals from a fresh controller always yields the same
// sequence of States and Transitions.
func (c *Controller) Step(sig Signals) (*State, []Transition) {
	c.mu.Lock()
	defer c.mu.Unlock()

	c.epoch++
	c.sinceTrans++
	p := c.cfg.Pressure(sig)
	c.lastP = p

	// Solve-latency EWMA (0.7 old / 0.3 new): the shedding estimator.
	if sig.AvgSolveS > 0 {
		if c.est == 0 {
			c.est = sig.AvgSolveS
		} else {
			c.est = 0.7*c.est + 0.3*sig.AvgSolveS
		}
	}

	// Hysteresis dwell counters. The middle band resets both, so a
	// signal oscillating across one threshold never accumulates dwell.
	switch {
	case p >= c.cfg.EnterPressure:
		c.above++
		c.below = 0
	case p <= c.cfg.ExitPressure:
		c.below++
		c.above = 0
	default:
		c.above, c.below = 0, 0
	}

	var trans []Transition
	switch {
	case c.draining:
		// Drain only ever snaps up; BeginDrain already did.
	case c.rung < MaxRung && c.above >= c.cfg.EnterDwell && c.sinceTrans >= c.cfg.MinDwell:
		trans = append(trans, Transition{
			Epoch: c.epoch, From: c.rung, To: c.rung + 1,
			Why: fmt.Sprintf("pressure %.2f ≥ %.2f for %d epochs", p, c.cfg.EnterPressure, c.above),
		})
		c.rung++
		c.above, c.sinceTrans = 0, 0
		c.transitions++
	case c.rung > RungFull && c.below >= c.cfg.ExitDwell && c.sinceTrans >= c.cfg.MinDwell:
		trans = append(trans, Transition{
			Epoch: c.epoch, From: c.rung, To: c.rung - 1,
			Why: fmt.Sprintf("pressure %.2f ≤ %.2f for %d epochs", p, c.cfg.ExitPressure, c.below),
		})
		c.rung--
		c.below, c.sinceTrans = 0, 0
		c.transitions++
	}

	// Worker-count breaker response, with its own calm-dwell so a
	// breaker flapping open/half-open doesn't bounce the pool size.
	if sig.BreakersOpen > 0 {
		c.brkCalm = 0
		c.workersCut = true
	} else if c.workersCut {
		if c.brkCalm++; c.brkCalm >= c.cfg.ExitDwell {
			c.workersCut = false
		}
	}

	// Cache sizing: grow while the miss stream exceeds current capacity
	// per epoch (thrash), shrink back once it goes quiet.
	c.stepCache(sig)

	st := c.derive()
	c.state.Store(st)
	return st, trans
}

// maxBoost is the power-of-two exponent bound for MaxCacheFactor.
func (c *Controller) maxBoost() int {
	b := 0
	for f := 1; f*2 <= c.cfg.MaxCacheFactor; f *= 2 {
		b++
	}
	return b
}

func (c *Controller) stepCache(sig Signals) {
	capNow := c.cfg.CacheSize << c.cacheBoost
	switch {
	case int(sig.CacheMisses) > capNow:
		c.cacheCold = 0
		if c.cacheHot++; c.cacheHot >= c.cfg.EnterDwell && c.cacheBoost < c.maxBoost() {
			c.cacheBoost++
			c.cacheHot = 0
		}
	case int(sig.CacheMisses) <= capNow/8:
		c.cacheHot = 0
		if c.cacheCold++; c.cacheCold >= c.cfg.ExitDwell && c.cacheBoost > 0 {
			c.cacheBoost--
			c.cacheCold = 0
		}
	default:
		c.cacheHot, c.cacheCold = 0, 0
	}
}

// derive computes the published State from the controller's current
// internal position. Callers hold c.mu.
func (c *Controller) derive() *State {
	st := &State{
		Epoch:      c.epoch,
		Rung:       c.rung,
		Workers:    c.cfg.Workers,
		QueueDepth: c.cfg.QueueDepth,
		CacheSize:  c.cfg.CacheSize << c.cacheBoost,
		EstSolveS:  c.est,
		Pressure:   c.lastP,
		Draining:   c.draining,
	}
	if c.rung >= RungCoarsen {
		st.CoarsenEps = c.cfg.CoarsenEps
	}
	if c.rung >= RungWindowed {
		st.Windows = c.cfg.Windows
	}
	if c.rung >= RungRealizeDown {
		// Under brownout: shed work that can't finish, shrink the
		// standing queue so waiting work stays young, and tighten the
		// ladder's early deadline slices.
		st.Shedding = true
		q := c.cfg.QueueDepth >> uint(c.rung)
		if q < c.cfg.MinQueue {
			q = c.cfg.MinQueue
		}
		if q > c.cfg.QueueDepth {
			q = c.cfg.QueueDepth
		}
		st.QueueDepth = q
		st.DeadlineFracs = c.cfg.PressureFracs
	}
	if c.workersCut {
		w := c.cfg.Workers / 2
		if w < c.cfg.MinWorkers {
			w = c.cfg.MinWorkers
		}
		st.Workers = w
	}
	return st
}

// BeginDrain pins the controller at full fidelity for the rest of its
// life: the rung snaps to RungFull immediately (drain only ever moves
// *toward* fidelity) and every later Step refuses to descend. It returns a
// Checkpoint of the final adaptive epoch for the drain log.
func (c *Controller) BeginDrain() Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()

	ck := Checkpoint{
		Epoch:       c.epoch,
		Rung:        c.rung,
		RungName:    c.rung.String(),
		Transitions: c.transitions,
		EstSolveS:   c.est,
		Pressure:    c.lastP,
	}
	if !c.draining {
		c.draining = true
		if c.rung != RungFull {
			c.rung = RungFull
			c.transitions++
		}
	}
	c.state.Store(c.derive())
	return ck
}
