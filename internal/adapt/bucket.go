package adapt

import (
	"math"
	"sync"
	"time"
)

// TokenBucket is the client-facing retry budget: requests that declare
// themselves retries (X-Retry-Attempt ≥ 1) must take a token, and the
// bucket refills at the service's observed completion rate. Under
// overload the completion rate collapses, the bucket runs dry, and a
// retry storm is turned away with Retry-After hints instead of being
// allowed to amplify the original overload.
//
// All methods take an explicit instant so tests (and the deterministic
// twin) can drive it on a synthetic clock.
type TokenBucket struct {
	mu     sync.Mutex
	cap    float64
	tokens float64
	rate   float64 // tokens per second
	last   time.Time
}

// NewTokenBucket returns a full bucket. A non-positive capacity is
// clamped to 1.
func NewTokenBucket(capacity int, ratePerS float64) *TokenBucket {
	if capacity < 1 {
		capacity = 1
	}
	if ratePerS < 0 || math.IsNaN(ratePerS) {
		ratePerS = 0
	}
	return &TokenBucket{cap: float64(capacity), tokens: float64(capacity), rate: ratePerS}
}

// SetRate retargets the refill rate (tokens/second). The controller calls
// this each epoch with the observed solve completion rate.
func (b *TokenBucket) SetRate(ratePerS float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ratePerS < 0 || math.IsNaN(ratePerS) {
		ratePerS = 0
	}
	b.rate = ratePerS
}

// refillLocked advances the bucket to now. Callers hold b.mu.
func (b *TokenBucket) refillLocked(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		return
	}
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.last = now
	b.tokens += dt * b.rate
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
}

// TakeAt consumes one token if available, reporting whether it did.
func (b *TokenBucket) TakeAt(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// TokensAt reports the current level (a gauge for /metrics).
func (b *TokenBucket) TokensAt(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	return b.tokens
}
