package schedule

import (
	"testing"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/problem"
	"powercap/internal/workloads"
)

func testGraph() *dag.Graph {
	b := dag.NewBuilder(2)
	sh := machine.DefaultShape()
	b.Compute(0, 0.5, sh, "phase1")
	b.Compute(1, 1.0, sh, "phase1")
	b.Collective("sync")
	b.Compute(0, 0.4, sh, "phase2")
	b.Compute(1, 0.4, sh, "phase2")
	return b.Finalize()
}

func solveOne(t *testing.T, g *dag.Graph, capW float64) (*core.Solver, *problem.IR, *core.Schedule) {
	t.Helper()
	s := core.NewSolver(machine.Default(), nil)
	sched, err := s.Solve(g, capW)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := s.IR(g)
	if err != nil {
		t.Fatal(err)
	}
	return s, ir, sched
}

func TestRealizeAllStrategiesCapClean(t *testing.T) {
	g := testGraph()
	for _, capW := range []float64{50, 60, 70, 90} {
		_, ir, sched := solveOne(t, g, capW)
		rs, err := RealizeAll(ir, sched, DefaultOptions())
		if err != nil {
			t.Fatalf("cap %v: %v", capW, err)
		}
		if len(rs) != len(Strategies) {
			t.Fatalf("cap %v: %d of %d strategies realized", capW, len(rs), len(Strategies))
		}
		for _, r := range rs {
			if r.CapViolationW != 0 {
				t.Errorf("cap %v %s: residual violation %v W", capW, r.Strategy, r.CapViolationW)
			}
			if v := r.Result.MaxCapViolation(capW); v > 1e-6 {
				t.Errorf("cap %v %s: simulator reports %v W over cap", capW, r.Strategy, v)
			}
			if r.MakespanS <= 0 {
				t.Errorf("cap %v %s: degenerate makespan %v", capW, r.Strategy, r.MakespanS)
			}
			if r.LPMakespanS != sched.MakespanS {
				t.Errorf("cap %v %s: LP makespan %v, want %v", capW, r.Strategy, r.LPMakespanS, sched.MakespanS)
			}
		}
		if Best(rs) == nil {
			t.Fatalf("cap %v: no cap-clean realization to pick", capW)
		}
	}
}

// TestDownNeverExceedsMixPower: the round-down-safe strategy must give every
// tunable task at most its LP-mixed power before any repair runs.
func TestDownNeverExceedsMixPower(t *testing.T) {
	g := testGraph()
	_, ir, sched := solveOne(t, g, 60)
	r, err := Realize(ir, sched, Down, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Repairs != 0 {
		t.Fatalf("down realization needed %d repairs; floor rounding should be cap-safe here", r.Repairs)
	}
	for _, task := range g.Tasks {
		if ir.Class[task.ID] != problem.Tunable {
			continue
		}
		if got, lp := r.Points[task.ID].PowerW, sched.Choices[task.ID].PowerW; got > lp+1e-9 {
			t.Errorf("task %d: floor power %v exceeds LP mix power %v", task.ID, got, lp)
		}
	}
}

// TestReplayChargesSwitchOverhead: replay realizes the exact mixed durations
// plus one transition per extra mix entry.
func TestReplayChargesSwitchOverhead(t *testing.T) {
	g := testGraph()
	_, ir, sched := solveOne(t, g, 60)
	opts := DefaultOptions()
	r, err := Realize(ir, sched, Replay, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantSwitches := 0
	for _, task := range g.Tasks {
		if ir.Class[task.ID] != problem.Tunable {
			continue
		}
		ch := sched.Choices[task.ID]
		if n := len(ch.Mix) - 1; n > 0 {
			wantSwitches += n
		}
		if r.Repairs == 0 {
			want := ch.DurationS + float64(len(ch.Mix)-1)*opts.SwitchOverheadS
			if got := r.Points[task.ID].Duration; got != want {
				t.Errorf("task %d: replay duration %v, want %v", task.ID, got, want)
			}
		}
	}
	if r.Switches != wantSwitches {
		t.Errorf("switches %d, want %d", r.Switches, wantSwitches)
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range Strategies {
		got, err := ParseStrategy(string(s))
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("upwards"); err == nil {
		t.Error("ParseStrategy accepted an unknown name")
	}
}

// TestPropertyRealizationBounds is the sweep property test: at every
// feasible sweep point of each 8-rank workload, every realization strategy
// must produce a simulator-validated schedule whose makespan is no better
// than the LP bound (within tolerance — the realized ASAP timeline may
// re-order events the LP pinned, which can shave a hair off) and whose
// instantaneous power never exceeds the cap.
func TestPropertyRealizationBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep property test is slow")
	}
	// Tolerance for realized < LP: the LP's fixed event order is itself a
	// restriction, so an ASAP replay of rounded points can undercut the
	// bound marginally; anything beyond a fraction of a percent would mean
	// the realization is not actually executing the LP's choices.
	const undercutTol = 5e-3
	caps := []float64{70, 50, 40, 30}
	opts := DefaultOptions()

	for _, name := range []string{"SP", "CG", "FT"} {
		w, err := workloads.ByName(name, workloads.Params{Ranks: 8, Iterations: 2, Seed: 1, WorkScale: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		slices, err := dag.SliceAll(w.Graph)
		if err != nil {
			t.Fatal(err)
		}
		g := slices[1].Graph
		s := core.NewSolver(machine.Default(), nil)
		jobCaps := make([]float64, len(caps))
		for i, c := range caps {
			jobCaps[i] = c * 8
		}
		pts, err := s.SolveSweep(g, jobCaps)
		if err != nil {
			t.Fatal(err)
		}
		ir, err := s.IR(g)
		if err != nil {
			t.Fatal(err)
		}
		feasible := 0
		for _, pt := range pts {
			if pt.Err != nil {
				continue
			}
			feasible++
			rs, err := RealizeAll(ir, pt.Schedule, opts)
			if err != nil {
				t.Fatalf("%s cap %v: %v", name, pt.CapW, err)
			}
			for _, r := range rs {
				if v := r.Result.MaxCapViolation(pt.CapW); v > 1e-6 {
					t.Errorf("%s cap %v %s: power exceeds cap by %v W", name, pt.CapW, r.Strategy, v)
				}
				if r.MakespanS < pt.Schedule.MakespanS*(1-undercutTol) {
					t.Errorf("%s cap %v %s: realized %v undercuts LP bound %v",
						name, pt.CapW, r.Strategy, r.MakespanS, pt.Schedule.MakespanS)
				}
			}
		}
		if feasible == 0 {
			t.Fatalf("%s: no feasible sweep point", name)
		}
	}
}
