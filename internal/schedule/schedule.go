// Package schedule converts fractional LP schedules into realizable ones —
// schedules a runtime could actually execute — and validates every candidate
// on the simulator, mirroring the paper's Sec. 6.1 replay validation.
//
// The LP's continuous solution mixes configurations ("we can emulate such a
// schedule by switching the configuration mid-task", Sec. 3.2); hardware
// offers only the discrete frontier points. Three realization strategies
// bracket that gap:
//
//   - nearest rounds each task to "the configuration closest to the optimal
//     point on the Pareto frontier" (Sec. 3.2's rounding rule) — fastest
//     realizable schedule, but rounding up can momentarily exceed the cap;
//   - down rounds each task to the highest frontier point at or below its
//     LP-mixed power — cap-safe by construction, at some makespan cost;
//   - replay emulates the convex mix by mid-task configuration switching,
//     charging the paper's median 145 µs DVFS-transition overhead per
//     switch and the task's time-averaged power (Eq. 8).
//
// Every candidate is evaluated by internal/sim; when the realized timeline
// exceeds the cap at any event (rounding up, or co-activity shifts from the
// earlier ASAP execution), a repair loop demotes the highest-power demotable
// task co-active at the worst violation one frontier level and re-validates,
// until the schedule is cap-clean. The loop terminates: every repair
// strictly lowers one task's frontier level, so total repairs are bounded by
// the sum of frontier sizes. Feasibility of the all-floor schedule is not
// guaranteed in theory (the realized timeline re-orders co-activity), so an
// exhausted repair budget reports an error rather than an unsafe schedule.
//
// The realized makespan is reported against the LP objective as the bound
// gap — the empirical distance between the paper's theoretical performance
// bound and a schedule that respects both discreteness and the cap.
package schedule

import (
	"context"
	"fmt"
	"math"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/obs"
	"powercap/internal/problem"
	"powercap/internal/sim"
)

// Strategy names a realization rule.
type Strategy string

const (
	// Nearest rounds each task to the frontier point closest in power to
	// its LP mix (Sec. 3.2).
	Nearest Strategy = "nearest"
	// Down rounds each task to the highest frontier point not above its
	// LP-mixed power (cap-safe).
	Down Strategy = "down"
	// Replay emulates the convex mix with mid-task switches at 145 µs per
	// transition (Sec. 3.2 / Sec. 6.1).
	Replay Strategy = "replay"
)

// Strategies lists all realization strategies in reporting order.
var Strategies = []Strategy{Nearest, Down, Replay}

// ParseStrategy maps a user-facing name to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case Nearest, Down, Replay:
		return Strategy(s), nil
	}
	return "", fmt.Errorf("schedule: unknown realization strategy %q (want nearest, down, or replay)", s)
}

// Options tunes realization.
type Options struct {
	// SwitchOverheadS is the cost of one mid-task configuration change
	// under Replay; the paper reports a median of 145 µs.
	SwitchOverheadS float64
	// CapTolW is the instantaneous power excess tolerated before the
	// repair loop engages (absorbs floating-point residue only).
	CapTolW float64
	// MaxRepairs bounds the repair loop; 0 means the natural bound, the
	// sum of all tunable tasks' frontier sizes.
	MaxRepairs int
}

// DefaultOptions returns the paper-parameterized realization options.
func DefaultOptions() Options {
	return Options{SwitchOverheadS: 145e-6, CapTolW: 1e-6}
}

// Realized is a realizable schedule with its simulator validation.
type Realized struct {
	Strategy Strategy
	// Points is the realized operating point per task (what the runtime
	// would execute); Configs the discrete configuration per tunable task
	// (the final one, for Replay).
	Points  []sim.TaskPoint
	Configs []machine.Config
	// Result is the simulator evaluation of the realized schedule.
	Result *sim.Result
	// MakespanS is the realized time to solution; LPMakespanS the LP
	// objective it is measured against; BoundGapPct the relative gap
	// 100·(realized − LP)/LP.
	MakespanS   float64
	LPMakespanS float64
	BoundGapPct float64
	// CapW is the job power constraint; CapViolationW the largest
	// instantaneous excess after repair (0 for an accepted schedule).
	CapW          float64
	CapViolationW float64
	// Repairs counts frontier-level demotions the repair loop applied;
	// Switches the mid-task configuration changes (Replay only).
	Repairs  int
	Switches int
}

// Realize converts the LP schedule into a realizable one under the given
// strategy and validates it on the simulator. The IR must be the one the
// schedule was solved from (same graph and frontiers).
func Realize(ir *problem.IR, sched *core.Schedule, strat Strategy, opts Options) (*Realized, error) {
	return RealizeCtx(context.Background(), ir, sched, strat, opts)
}

// RealizeCtx is Realize recorded as a schedule.realize obs span, with each
// simulator validation (sim.evaluate) and the repair loop (schedule.repair)
// nested under it.
func RealizeCtx(ctx context.Context, ir *problem.IR, sched *core.Schedule, strat Strategy, opts Options) (*Realized, error) {
	ctx, span := obs.Start(ctx, "schedule.realize")
	defer span.End()
	span.SetAttr("strategy", string(strat))
	r, err := realize(ctx, ir, sched, strat, opts)
	if err == nil {
		span.SetAttr("repairs", r.Repairs)
		span.SetAttr("bound_gap_pct", r.BoundGapPct)
	}
	return r, err
}

func realize(ctx context.Context, ir *problem.IR, sched *core.Schedule, strat Strategy, opts Options) (*Realized, error) {
	g := ir.G
	if len(sched.Choices) != len(g.Tasks) {
		return nil, fmt.Errorf("schedule: %d choices for %d tasks", len(sched.Choices), len(g.Tasks))
	}
	if opts.CapTolW <= 0 {
		opts.CapTolW = 1e-6
	}

	r := &Realized{
		Strategy:    strat,
		Points:      sim.Points(g),
		Configs:     make([]machine.Config, len(g.Tasks)),
		LPMakespanS: sched.MakespanS,
		CapW:        sched.CapW,
	}

	// level[tid] is the task's current frontier position; -1 marks a task
	// still realized as its continuous mix (Replay before any repair).
	level := make([]int, len(g.Tasks))
	budget := 0
	for _, t := range g.Tasks {
		level[t.ID] = -1
		ch := sched.Choices[t.ID]
		switch ir.Class[t.ID] {
		case problem.Message:
			// sim.Points prefilled the fixed duration.
		case problem.Fixed:
			r.Points[t.ID] = sim.TaskPoint{Duration: 0, PowerW: ir.FixedPowerW[t.ID]}
		case problem.Tunable:
			cols := ir.Cols[t.ID]
			budget += len(cols.F.Pts)
			switch strat {
			case Nearest:
				k, _ := cols.F.Nearest(ch.PowerW)
				setLevel(r, cols, t.ID, k, level)
			case Down:
				k, _ := cols.F.Floor(ch.PowerW)
				setLevel(r, cols, t.ID, k, level)
			case Replay:
				dur := ch.DurationS
				if n := len(ch.Mix) - 1; n > 0 {
					dur += float64(n) * opts.SwitchOverheadS
					r.Switches += n
				}
				r.Points[t.ID] = sim.TaskPoint{Duration: dur, PowerW: ch.PowerW}
				if len(ch.Mix) > 0 {
					r.Configs[t.ID] = ch.Mix[len(ch.Mix)-1].Config
				}
			default:
				return nil, fmt.Errorf("schedule: unknown strategy %q", strat)
			}
		}
	}
	if opts.MaxRepairs <= 0 {
		opts.MaxRepairs = budget
	}

	// Validate, repairing cap violations by demoting the hottest demotable
	// task co-active at the worst violation.
	for {
		res, err := sim.EvaluateCtx(ctx, g, r.Points, sim.SlackHoldsTaskPower, 0)
		if err != nil {
			return nil, err
		}
		r.Result = res
		r.MakespanS = res.Makespan
		r.CapViolationW = res.MaxCapViolation(sched.CapW)
		if r.CapViolationW <= opts.CapTolW {
			r.CapViolationW = 0
			break
		}
		if r.Repairs >= opts.MaxRepairs {
			return nil, fmt.Errorf("schedule: %s realization still exceeds cap %.1f W by %.3f W after %d repairs",
				strat, sched.CapW, r.CapViolationW, r.Repairs)
		}
		_, rsp := obs.Start(ctx, "schedule.repair")
		rsp.SetAttr("violation_w", r.CapViolationW)
		ok := demoteWorst(ir, sched, r, level)
		rsp.End()
		if !ok {
			return nil, fmt.Errorf("schedule: %s realization exceeds cap %.1f W by %.3f W with no demotable task",
				strat, sched.CapW, r.CapViolationW)
		}
		r.Repairs++
	}

	if r.LPMakespanS > 0 {
		r.BoundGapPct = 100 * (r.MakespanS - r.LPMakespanS) / r.LPMakespanS
	}
	return r, nil
}

func setLevel(r *Realized, cols *problem.Columns, tid dag.TaskID, k int, level []int) {
	level[tid] = k
	r.Points[tid] = sim.TaskPoint{Duration: cols.Durs[k], PowerW: cols.F.Pts[k].PowerW}
	r.Configs[tid] = cols.F.Cfgs[k]
}

// demoteWorst finds the time of the largest cap excess in r.Result, then
// demotes the highest-power demotable tunable task occupying a rank there by
// one frontier level (a mixed Replay task first drops to the floor of its
// average power). Returns false when no co-active task can go lower.
func demoteWorst(ir *problem.IR, sched *core.Schedule, r *Realized, level []int) bool {
	worstT, worstP := 0.0, math.Inf(-1)
	for _, s := range r.Result.EventPower {
		if s.PowerW > worstP {
			worstT, worstP = s.Time, s.PowerW
		}
	}
	occ := problem.NewOccupancy(ir.G, r.Result)

	victim, victimLevel := dag.TaskID(-1), 0
	victimPower := math.Inf(-1)
	for rank := 0; rank < ir.G.NumRanks; rank++ {
		tid, ok := occ.TaskAt(rank, worstT)
		if !ok || ir.Class[tid] != problem.Tunable {
			continue
		}
		cols := ir.Cols[tid]
		cur := r.Points[tid].PowerW
		next := -1
		switch {
		case level[tid] < 0: // Replay mix: drop to the floor of its average power
			k, _ := cols.F.Floor(cur)
			if cols.F.Pts[k].PowerW >= cur-1e-12 && k > 0 {
				k-- // avg sat exactly on a frontier point: go strictly below
			}
			if cols.F.Pts[k].PowerW < cur-1e-12 {
				next = k
			}
		case level[tid] > 0:
			next = level[tid] - 1
		}
		if next >= 0 && cur > victimPower {
			victim, victimLevel, victimPower = tid, next, cur
		}
	}
	if victim < 0 {
		return false
	}
	setLevel(r, ir.Cols[victim], victim, victimLevel, level)
	return true
}

// RealizeAll realizes the schedule under every strategy. Strategies that
// fail (repair budget exhausted) are skipped; an error is returned only when
// none succeed.
func RealizeAll(ir *problem.IR, sched *core.Schedule, opts Options) ([]*Realized, error) {
	return RealizeAllCtx(context.Background(), ir, sched, opts)
}

// RealizeAllCtx is RealizeAll with obs span parentage for each strategy's
// realization.
func RealizeAllCtx(ctx context.Context, ir *problem.IR, sched *core.Schedule, opts Options) ([]*Realized, error) {
	var out []*Realized
	var firstErr error
	for _, strat := range Strategies {
		r, err := RealizeCtx(ctx, ir, sched, strat, opts)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("schedule: every realization strategy failed: %w", firstErr)
	}
	return out, nil
}

// Best returns the fastest cap-clean realization from a RealizeAll result.
func Best(rs []*Realized) *Realized {
	var best *Realized
	for _, r := range rs {
		if r.CapViolationW > 0 {
			continue
		}
		if best == nil || r.MakespanS < best.MakespanS {
			best = r
		}
	}
	return best
}
