package replay

import (
	"math"
	"testing"

	"powercap/internal/core"
	"powercap/internal/machine"
	"powercap/internal/workloads"
)

func setup(t *testing.T) (*workloads.Workload, *core.Solver, *core.Schedule) {
	t.Helper()
	w := workloads.CoMD(workloads.Params{Ranks: 4, Iterations: 3, Seed: 11, WorkScale: 0.3})
	s := core.NewSolver(machine.Default(), w.EffScale)
	sched, err := s.SolveIterations(w.Graph, 45*4)
	if err != nil {
		t.Fatal(err)
	}
	return w, s, sched
}

func TestDiscreteReplayRunsAndReportsSwitches(t *testing.T) {
	w, _, sched := setup(t)
	rep, err := Run(w.Graph, sched, DefaultOptions(machine.Default(), w.EffScale))
	if err != nil {
		t.Fatal(err)
	}
	if rep.MakespanS <= 0 {
		t.Fatal("empty makespan")
	}
	if rep.Switches == 0 {
		t.Fatal("expected at least one configuration switch")
	}
}

func TestContinuousReplayTracksLPMakespan(t *testing.T) {
	w, _, sched := setup(t)
	opts := DefaultOptions(machine.Default(), w.EffScale)
	opts.Mode = Continuous
	opts.SwitchOverheadS = 0 // isolate pure schedule timing
	rep, err := Run(w.Graph, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the exact mixed durations ASAP can only tighten slack, so
	// the replayed makespan is bounded by the LP's (summed) makespan.
	if rep.MakespanS > sched.MakespanS*(1+1e-9) {
		t.Fatalf("continuous replay %v exceeds LP bound %v", rep.MakespanS, sched.MakespanS)
	}
	// And it should be close: the per-iteration LP's bound is tight for
	// collective-synchronized workloads.
	if rep.MakespanS < sched.MakespanS*0.9 {
		t.Fatalf("continuous replay %v implausibly far below LP bound %v", rep.MakespanS, sched.MakespanS)
	}
}

func TestContinuousReplayRespectsCap(t *testing.T) {
	w, _, sched := setup(t)
	opts := DefaultOptions(machine.Default(), w.EffScale)
	opts.Mode = Continuous
	opts.SwitchOverheadS = 0
	rep, err := Run(w.Graph, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CapViolationW > 1e-6 {
		t.Fatalf("continuous replay violates cap by %v W", rep.CapViolationW)
	}
}

func TestDiscreteReplayNearCap(t *testing.T) {
	// Discrete rounding picks the nearest frontier point, which can sit
	// slightly above the mixed power; the violation must stay small
	// relative to the cap (the paper's replays also verify, not prove).
	w, _, sched := setup(t)
	opts := DefaultOptions(machine.Default(), w.EffScale)
	rep, err := Run(w.Graph, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CapViolationW > 0.05*sched.CapW {
		t.Fatalf("discrete replay violates cap by %v W (cap %v)", rep.CapViolationW, sched.CapW)
	}
}

func TestSwitchSuppressionThreshold(t *testing.T) {
	w, _, sched := setup(t)
	opts := DefaultOptions(machine.Default(), w.EffScale)
	// With an enormous threshold every switch after the first per rank is
	// suppressed.
	opts.SwitchThresholdS = 1e9
	rep, err := Run(w.Graph, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Switches > w.Graph.NumRanks {
		t.Fatalf("expected at most one switch per rank, got %d", rep.Switches)
	}
	// With a zero threshold nothing is suppressed.
	opts.SwitchThresholdS = 0
	rep2, err := Run(w.Graph, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Suppressed != 0 {
		t.Fatalf("zero threshold still suppressed %d switches", rep2.Suppressed)
	}
}

func TestSwitchOverheadSlowsReplay(t *testing.T) {
	w, _, sched := setup(t)
	cheap := DefaultOptions(machine.Default(), w.EffScale)
	cheap.SwitchOverheadS = 0
	costly := DefaultOptions(machine.Default(), w.EffScale)
	costly.SwitchOverheadS = 10e-3

	r1, err := Run(w.Graph, sched, cheap)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(w.Graph, sched, costly)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MakespanS <= r1.MakespanS {
		t.Fatalf("switch overhead did not slow replay: %v vs %v", r2.MakespanS, r1.MakespanS)
	}
}

func TestRunValidation(t *testing.T) {
	w, _, sched := setup(t)
	if _, err := Run(w.Graph, sched, Options{}); err == nil {
		t.Fatal("expected error for missing model")
	}
	bad := *sched
	bad.Choices = bad.Choices[:1]
	if _, err := Run(w.Graph, &bad, DefaultOptions(machine.Default(), nil)); err == nil {
		t.Fatal("expected error for choice/task mismatch")
	}
}

func TestReplayMatchesLPDurationsWithoutOverheads(t *testing.T) {
	w, _, sched := setup(t)
	opts := DefaultOptions(machine.Default(), w.EffScale)
	opts.Mode = Continuous
	opts.SwitchOverheadS = 0
	opts.SwitchThresholdS = 0
	rep, err := Run(w.Graph, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	for tid := range w.Graph.Tasks {
		ch := sched.Choices[tid]
		if len(ch.Mix) == 0 {
			continue
		}
		got := rep.Result.End[tid] - rep.Result.Start[tid]
		if math.Abs(got-ch.DurationS) > 1e-9 {
			t.Fatalf("task %d replay duration %v != LP %v", tid, got, ch.DurationS)
		}
	}
}
