// Package replay validates LP/ILP schedules by replaying them on the
// simulator, as Sec. 6.1 of the paper does on real hardware: "we replay
// them on their originating benchmarks by selecting a configuration for
// each task according to the LP/ILP-derived schedule. As the application
// encounters each MPI call, our replay mechanism changes the configuration
// appropriately for the next computation task."
//
// Two modes mirror Sec. 3.2's two solution flavors:
//
//   - Continuous replays the convex mix by "switching the configuration
//     mid-task to emulate the effect of the optimal configurations using
//     multiple physically available discrete configurations";
//   - Discrete replays the rounded single configuration per task.
//
// Replay also reproduces the paper's two practicalities: a configuration
// change costs DVFS-transition overhead ("a median per-task overhead of
// 145 microseconds"), and changes are suppressed for short tasks ("we only
// change configurations if the schedule indicates that the upcoming task
// will be of sufficient duration to justify the overhead. We use a
// threshold of 1ms").
package replay

import (
	"fmt"
	"sort"

	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/machine"
	"powercap/internal/sim"
)

// Mode selects which flavor of the LP solution is replayed.
type Mode int

const (
	// Continuous replays the convex configuration mixes (mid-task
	// switches).
	Continuous Mode = iota
	// Discrete replays the rounded single configuration per task.
	Discrete
)

// Options tunes the replay runtime.
type Options struct {
	Mode Mode
	// Model recomputes durations when a switch is suppressed and the task
	// must run in the previous configuration. Required.
	Model *machine.Model
	// EffScale is the per-rank efficiency multiplier; nil = 1.0.
	EffScale []float64
	// SwitchOverheadS is the cost of one configuration change (DVFS
	// transition plus runtime logic); paper median 145 µs.
	SwitchOverheadS float64
	// SwitchThresholdS suppresses changes for tasks shorter than this;
	// paper uses 1 ms.
	SwitchThresholdS float64
}

// DefaultOptions returns the paper's replay parameters in discrete mode.
func DefaultOptions(model *machine.Model, effScale []float64) Options {
	return Options{
		Mode:             Discrete,
		Model:            model,
		EffScale:         effScale,
		SwitchOverheadS:  145e-6,
		SwitchThresholdS: 1e-3,
	}
}

// Report is the outcome of replaying a schedule.
type Report struct {
	// Result is the full simulator evaluation of the replayed run.
	Result *sim.Result
	// MakespanS is the replayed time to solution (with overheads).
	MakespanS float64
	// LPMakespanS is the schedule's own predicted makespan, for
	// comparison.
	LPMakespanS float64
	// CapViolationW is the largest instantaneous excess over the
	// schedule's power constraint (0 = verified within constraint).
	CapViolationW float64
	// Switches counts configuration changes performed; Suppressed counts
	// changes skipped under the short-task threshold.
	Switches   int
	Suppressed int
}

// Run replays the schedule on its graph.
func Run(g *dag.Graph, sched *core.Schedule, opts Options) (*Report, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("replay: options require a machine model")
	}
	if len(sched.Choices) != len(g.Tasks) {
		return nil, fmt.Errorf("replay: schedule has %d choices for %d tasks", len(sched.Choices), len(g.Tasks))
	}
	eff := func(rank int) float64 {
		if opts.EffScale == nil || rank < 0 || rank >= len(opts.EffScale) {
			return 1
		}
		return opts.EffScale[rank]
	}

	// Replay rank-by-rank in program order so switch accounting follows
	// the execution sequence each rank's runtime would see.
	order := make([]int, 0, len(g.Tasks))
	for i := range g.Tasks {
		if g.Tasks[i].Kind == dag.Compute {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := &g.Tasks[order[a]], &g.Tasks[order[b]]
		if ta.Rank != tb.Rank {
			return ta.Rank < tb.Rank
		}
		return ta.ID < tb.ID // builder IDs follow program order per rank
	})

	rep := &Report{LPMakespanS: sched.MakespanS}
	pts := sim.Points(g)
	cur := make(map[int]machine.Config) // rank → current configuration

	for _, tid := range order {
		t := &g.Tasks[tid]
		ch := sched.Choices[tid]
		if t.Work <= 0 {
			pts[tid] = sim.TaskPoint{Duration: 0, PowerW: ch.PowerW}
			continue
		}

		var wantCfg machine.Config
		var dur, pow float64
		var midSwitches int
		switch opts.Mode {
		case Discrete:
			wantCfg = ch.Discrete
			dur, pow = ch.DiscreteDurationS, ch.DiscretePowerW
		case Continuous:
			if len(ch.Mix) == 0 {
				return nil, fmt.Errorf("replay: task %d has no mix", tid)
			}
			wantCfg = ch.Mix[0].Config
			dur, pow = ch.DurationS, ch.PowerW
			midSwitches = len(ch.Mix) - 1
		default:
			return nil, fmt.Errorf("replay: unknown mode %d", opts.Mode)
		}

		prev, havePrev := cur[t.Rank]
		switchNeeded := !havePrev || prev != wantCfg
		if switchNeeded && dur < opts.SwitchThresholdS && havePrev {
			// Too short to justify the transition: stay in the previous
			// configuration and recompute the operating point.
			rep.Suppressed++
			dur = opts.Model.Duration(t.Work, t.Shape, prev)
			pow = opts.Model.Power(t.Shape, prev, eff(t.Rank))
			wantCfg = prev
			midSwitches = 0
		} else if switchNeeded {
			rep.Switches++
			dur += opts.SwitchOverheadS
		}
		if midSwitches > 0 {
			rep.Switches += midSwitches
			dur += float64(midSwitches) * opts.SwitchOverheadS
			wantCfg = ch.Mix[len(ch.Mix)-1].Config // rank ends in the last mix config
		}
		cur[t.Rank] = wantCfg
		pts[tid] = sim.TaskPoint{Duration: dur, PowerW: pow}
	}

	res, err := sim.Evaluate(g, pts, sim.SlackHoldsTaskPower, 0)
	if err != nil {
		return nil, err
	}
	rep.Result = res
	rep.MakespanS = res.Makespan
	rep.CapViolationW = res.MaxCapViolation(sched.CapW)
	return rep, nil
}
