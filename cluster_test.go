package powercap_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"powercap"
)

// AllocateCluster end-to-end through the facade: a heterogeneous two-job
// cluster allocates every watt usefully, preserves input order, and the
// market split is never worse than uniform.
func TestAllocateCluster(t *testing.T) {
	p := powercap.WorkloadParams{Ranks: 4, Iterations: 3, Seed: 2, WorkScale: 0.3}
	sp := powercap.NewWorkload("SP", p)
	bt := powercap.NewWorkload("BT", p)
	jobs := []powercap.ClusterJob{
		{Name: "sp-0", Graph: sp.Graph, EffScale: sp.EffScale},
		{Name: "bt-0", Graph: bt.Graph, EffScale: bt.EffScale},
	}
	const budget = 180

	uni, err := powercap.AllocateCluster(context.Background(), jobs, budget, nil, powercap.ClusterOptions{Policy: powercap.PolicyUniform})
	if err != nil {
		t.Fatal(err)
	}
	mkt, err := powercap.AllocateCluster(context.Background(), jobs, budget, nil, powercap.ClusterOptions{Policy: powercap.PolicyMarket})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []*powercap.ClusterAllocation{uni, mkt} {
		if len(a.Jobs) != 2 || a.Jobs[0].Name != "sp-0" || a.Jobs[1].Name != "bt-0" {
			t.Fatalf("%s: job order not preserved: %+v", a.Policy, a.Jobs)
		}
		var sum float64
		for _, j := range a.Jobs {
			if j.Schedule == nil || j.MakespanS <= 0 {
				t.Fatalf("%s: job %s missing schedule", a.Policy, j.Name)
			}
			sum += j.CapW
		}
		if sum > budget+1e-6 {
			t.Errorf("%s: allocated %.3f W over budget", a.Policy, sum)
		}
	}
	if mkt.TotalMakespanS > uni.TotalMakespanS*(1+1e-9) {
		t.Errorf("market total %.6f worse than uniform %.6f", mkt.TotalMakespanS, uni.TotalMakespanS)
	}
}

// A starved budget surfaces the typed *BudgetError through the facade.
func TestAllocateClusterBudgetError(t *testing.T) {
	w := powercap.NewWorkload("CG", powercap.WorkloadParams{Ranks: 4, Iterations: 2, Seed: 1, WorkScale: 0.3})
	jobs := []powercap.ClusterJob{{Name: "cg", Graph: w.Graph, EffScale: w.EffScale}}
	_, err := powercap.AllocateCluster(context.Background(), jobs, 5, nil, powercap.ClusterOptions{})
	var be *powercap.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *BudgetError", err)
	}
	if len(be.Floors) != 1 || be.Floors[0].Name != "cg" {
		t.Errorf("BudgetError floors %+v should name cg", be.Floors)
	}
	if be.FloorSumW <= be.BudgetW || math.IsNaN(be.FloorSumW) {
		t.Errorf("FloorSumW %g should exceed budget %g", be.FloorSumW, be.BudgetW)
	}
}
