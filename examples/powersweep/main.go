// Powersweep: trace the LP performance bound of one workload across a fine
// grid of job-level power constraints — the time/power tradeoff curve a
// job scheduler would consult when deciding how much power to grant a job.
//
// Run with:
//
//	go run ./examples/powersweep
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"

	"powercap"
)

func main() {
	w := powercap.NewWorkload("LULESH", powercap.WorkloadParams{
		Ranks: 8, Iterations: 5, Seed: 3, WorkScale: 0.5,
	})
	sys := powercap.SystemFor(w, nil)

	fmt.Println("LULESH proxy: LP makespan bound vs job power")
	fmt.Printf("%-14s%14s%14s  %s\n", "W/socket", "bound(s)", "marginal", "")
	prev := 0.0
	for perSocket := 24.0; perSocket <= 80; perSocket += 4 {
		jobCap := perSocket * float64(w.Graph.NumRanks)
		sched, err := sys.UpperBound(w.Graph, jobCap)
		if err != nil {
			if errors.Is(err, powercap.ErrInfeasible) {
				fmt.Printf("%-14.0f%14s\n", perSocket, "infeasible")
				continue
			}
			log.Fatal(err)
		}
		marginal := ""
		if prev > 0 {
			marginal = fmt.Sprintf("%+.1f%%", (sched.MakespanS/prev-1)*100)
		}
		bars := int(sched.MakespanS / 0.1)
		if bars > 60 {
			bars = 60
		}
		fmt.Printf("%-14.0f%14.3f%14s  %s\n", perSocket, sched.MakespanS, marginal, strings.Repeat("#", bars))
		prev = sched.MakespanS
	}
	fmt.Println("\nThe curve is convex: each additional watt buys less time — the LP's")
	fmt.Println("convex Pareto frontiers compose into a convex job-level tradeoff.")
}
