// Jobpartition: the paper's motivating setting — "total machine power will
// be divided across multiple simultaneous jobs, with each job being
// allocated a power bound". Given two jobs sharing one budget, use the LP
// bound of each job as a function of its allocation to find the split that
// minimizes the later finisher. Because each job's time/power curve is
// convex (a consequence of the convex Pareto frontiers), a simple bisection
// on the marginal value of power finds the optimum.
//
// Run with:
//
//	go run ./examples/jobpartition
package main

import (
	"errors"
	"fmt"
	"log"
	"math"

	"powercap"
)

func main() {
	jobA := powercap.NewWorkload("BT", powercap.WorkloadParams{Ranks: 4, Iterations: 4, Seed: 4, WorkScale: 0.4})
	jobB := powercap.NewWorkload("CoMD", powercap.WorkloadParams{Ranks: 4, Iterations: 4, Seed: 4, WorkScale: 0.4})
	sysA := powercap.SystemFor(jobA, nil)
	sysB := powercap.SystemFor(jobB, nil)

	const totalW = 300.0 // shared machine budget for both 4-socket jobs

	boundAt := func(sys *powercap.System, w *powercap.Workload, capW float64) (float64, bool) {
		sched, err := sys.UpperBound(w.Graph, capW)
		if err != nil {
			if errors.Is(err, powercap.ErrInfeasible) {
				return math.Inf(1), false
			}
			log.Fatal(err)
		}
		return sched.MakespanS, true
	}

	fmt.Printf("splitting %.0f W between BT and CoMD (4 sockets each)\n\n", totalW)
	fmt.Printf("%-14s%14s%14s%14s\n", "BT share(W)", "BT time(s)", "CoMD time(s)", "max(s)")
	best, bestAt := math.Inf(1), 0.0
	for capA := 90.0; capA <= totalW-90; capA += 15 {
		tA, okA := boundAt(sysA, jobA, capA)
		tB, okB := boundAt(sysB, jobB, totalW-capA)
		row := fmt.Sprintf("%-14.0f", capA)
		if okA {
			row += fmt.Sprintf("%14.3f", tA)
		} else {
			row += fmt.Sprintf("%14s", "infeasible")
		}
		if okB {
			row += fmt.Sprintf("%14.3f", tB)
		} else {
			row += fmt.Sprintf("%14s", "infeasible")
		}
		worst := math.Max(tA, tB)
		if okA && okB {
			row += fmt.Sprintf("%14.3f", worst)
			if worst < best {
				best, bestAt = worst, capA
			}
		}
		fmt.Println(row)
	}
	fmt.Printf("\nbest split: %.0f W to BT, %.0f W to CoMD → both jobs finish within %.3f s\n",
		bestAt, totalW-bestAt, best)
	fmt.Println("(the LP bound per job turns cluster-level power scheduling into a")
	fmt.Println("one-dimensional convex search — the \"quantitative optimization target\"")
	fmt.Println("the paper's conclusion promises future runtimes)")
}
