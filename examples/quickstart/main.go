// Quickstart: build a tiny MPI + OpenMP trace by hand, compute the LP
// performance bound under a job power cap, and validate it by replay.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"powercap"
)

func main() {
	// Trace a 4-rank application: one imbalanced compute phase, a global
	// reduction, and a balanced second phase. The builder's methods mirror
	// the MPI calls a tracing library would record.
	const ranks = 4
	tb := powercap.NewTrace(ranks)
	shape := powercap.DefaultShape()
	for r := 0; r < ranks; r++ {
		work := 1.0 + 0.3*float64(r) // rank 3 carries 90% more work than rank 0
		tb.Compute(r, work, shape, "phase1")
	}
	tb.Collective("allreduce")
	for r := 0; r < ranks; r++ {
		tb.Compute(r, 0.5, shape, "phase2")
	}
	graph := tb.Finalize()

	sys := powercap.NewSystem(nil) // default E5-2670-like sockets

	// The paper's question: with 45 W per socket on average, how fast
	// could this application possibly run, and how close do real
	// policies get?
	const perSocketW = 45.0
	jobCapW := perSocketW * ranks

	bound, err := sys.UpperBoundWhole(graph, jobCapW)
	if err != nil {
		log.Fatal(err)
	}
	static, err := sys.RunStatic(graph, perSocketW)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("job power cap:        %.0f W (%.0f W/socket)\n", jobCapW, perSocketW)
	fmt.Printf("LP performance bound: %.3f s\n", bound.MakespanS)
	fmt.Printf("uniform Static:       %.3f s  (%.1f%% away from optimal)\n",
		static.Makespan, (static.Makespan/bound.MakespanS-1)*100)

	// The LP gives the overloaded rank more power than the uniform share.
	fmt.Println("\nper-task LP decisions (phase1):")
	for tid, task := range graph.Tasks {
		if task.Class != "phase1" {
			continue
		}
		ch := bound.Choices[tid]
		fmt.Printf("  rank %d: %.2f work → %5.1f W, %.3f s (rounded to %v)\n",
			task.Rank, task.Work, ch.PowerW, ch.DurationS, ch.Discrete)
	}

	// Replay the schedule to verify it is realizable within the cap.
	rep, err := sys.Replay(graph, bound, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplay: %.3f s, max cap violation %.3f W\n", rep.MakespanS, rep.CapViolationW)
}
