// Loadimbalance: the paper's BT scenario — a workload with residual static
// load imbalance run under a tight power cap, where nonuniform power
// allocation buys large speedups over uniform Static capping.
//
// Run with:
//
//	go run ./examples/loadimbalance
package main

import (
	"fmt"
	"log"

	"powercap"
)

func main() {
	w := powercap.NewWorkload("BT", powercap.WorkloadParams{
		Ranks: 8, Iterations: 10, Seed: 7, WorkScale: 0.5,
	})
	sys := powercap.SystemFor(w, nil)

	fmt.Println("BT proxy: residual zone imbalance, ring exchange, per-iteration collectives")
	fmt.Printf("%-12s%12s%14s%12s%16s%16s\n",
		"W/socket", "Static(s)", "Conductor(s)", "LP(s)", "LP vs Static", "Cond vs Static")
	for _, perSocket := range []float64{30, 40, 50, 60, 70} {
		cmp, err := sys.Compare(w, perSocket)
		if err != nil {
			log.Fatal(err)
		}
		lp := "infeasible"
		lpGain := "-"
		if !cmp.LPInfeasible {
			lp = fmt.Sprintf("%.3f", cmp.LPBoundS)
			lpGain = fmt.Sprintf("%.1f%%", cmp.LPvsStaticPct)
		}
		fmt.Printf("%-12.0f%12.3f%14.3f%12s%16s%15.1f%%\n",
			perSocket, cmp.StaticS, cmp.ConductorS, lp, lpGain, cmp.ConductorVsStaticPct)
	}

	fmt.Println("\nAt 30 W the uniform cap forces RAPL into duty-cycle modulation on every")
	fmt.Println("socket while the LP escapes by running fewer threads at higher frequency")
	fmt.Println("and shifting watts toward the heavy ranks — the paper's Fig. 13 story.")
}
