// Shadowprice: the LP's dual values price power in seconds per watt — the
// marginal information a power-aware job scheduler needs when deciding
// which job should receive the next watt (the paper's motivating setting:
// "total machine power will be divided across multiple simultaneous jobs").
// The sweep itself is powercap.MarginalCurve; the cluster-level allocator
// that acts on these prices is powercap.AllocateCluster.
//
// Run with:
//
//	go run ./examples/shadowprice
package main

import (
	"context"
	"fmt"
	"log"

	"powercap"
)

func main() {
	// Two jobs compete for one power budget: a power-hungry BT and a
	// contention-limited LULESH.
	bt := powercap.NewWorkload("BT", powercap.WorkloadParams{Ranks: 4, Iterations: 5, Seed: 2, WorkScale: 0.4})
	lu := powercap.NewWorkload("LULESH", powercap.WorkloadParams{Ranks: 4, Iterations: 5, Seed: 2, WorkScale: 0.4})

	perSocket := []float64{30, 35, 40, 50, 60, 70}
	caps := make([]float64, len(perSocket))
	for i, w := range perSocket {
		caps[i] = w * 4 // 4 ranks → job-level caps
	}

	curves := make(map[string][]powercap.MarginalPoint)
	for _, w := range []*powercap.Workload{bt, lu} {
		curve, err := powercap.SystemFor(w, nil).MarginalCurve(context.Background(), w.Graph, caps)
		if err != nil {
			log.Fatal(err)
		}
		curves[w.Name] = curve
	}

	fmt.Println("Marginal value of power (seconds of makespan per extra watt):")
	fmt.Printf("%-12s%16s%16s\n", "W/socket", "BT (s/W)", "LULESH (s/W)")
	for i, w := range perSocket {
		row := fmt.Sprintf("%-12.0f", w)
		for _, name := range []string{bt.Name, lu.Name} {
			pt := curves[name][i]
			if pt.Infeasible {
				row += fmt.Sprintf("%16s", "infeasible")
			} else {
				row += fmt.Sprintf("%16.4f", pt.MarginalSecPerW)
			}
		}
		fmt.Println(row)
	}

	fmt.Println("\nA job scheduler holding a shared budget should grant the next watt to")
	fmt.Println("the job with the most negative shadow price; as caps loosen, the prices")
	fmt.Println("decay toward zero and extra power stops buying time.")
}
