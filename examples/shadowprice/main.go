// Shadowprice: the LP's dual values price power in seconds per watt — the
// marginal information a power-aware job scheduler needs when deciding
// which job should receive the next watt (the paper's motivating setting:
// "total machine power will be divided across multiple simultaneous jobs").
//
// Run with:
//
//	go run ./examples/shadowprice
package main

import (
	"errors"
	"fmt"
	"log"

	"powercap"
)

func main() {
	// Two jobs compete for one power budget: a power-hungry BT and a
	// contention-limited LULESH.
	bt := powercap.NewWorkload("BT", powercap.WorkloadParams{Ranks: 4, Iterations: 5, Seed: 2, WorkScale: 0.4})
	lu := powercap.NewWorkload("LULESH", powercap.WorkloadParams{Ranks: 4, Iterations: 5, Seed: 2, WorkScale: 0.4})

	fmt.Println("Marginal value of power (seconds of makespan per extra watt):")
	fmt.Printf("%-12s%16s%16s\n", "W/socket", "BT (s/W)", "LULESH (s/W)")
	for _, perSocket := range []float64{30, 35, 40, 50, 60, 70} {
		row := fmt.Sprintf("%-12.0f", perSocket)
		for _, w := range []*powercap.Workload{bt, lu} {
			sys := powercap.SystemFor(w, nil)
			sched, err := sys.UpperBound(w.Graph, perSocket*4)
			if err != nil {
				if errors.Is(err, powercap.ErrInfeasible) {
					row += fmt.Sprintf("%16s", "infeasible")
					continue
				}
				log.Fatal(err)
			}
			row += fmt.Sprintf("%16.4f", sched.MarginalSecPerW)
		}
		fmt.Println(row)
	}

	fmt.Println("\nA job scheduler holding a shared budget should grant the next watt to")
	fmt.Println("the job with the most negative shadow price; as caps loosen, the prices")
	fmt.Println("decay toward zero and extra power stops buying time.")
}
