// Flowvslp: compare the appendix's flow ILP (solver-chosen event order)
// against the fixed-vertex-order LP on a small asynchronous message
// exchange — the paper's Fig. 8 experiment in miniature.
//
// Run with:
//
//	go run ./examples/flowvslp
package main

import (
	"errors"
	"fmt"
	"log"

	"powercap"
)

func main() {
	// The Fig. 2 program: rank 0 computes, Isends, computes, Waits,
	// computes; rank 1 computes, Recvs, computes.
	tb := powercap.NewTrace(2)
	sh := powercap.DefaultShape()
	tb.Compute(0, 0.8, sh, "A1")
	tb.Isend(0, 1, 1<<20)
	tb.Compute(0, 0.6, sh, "A2")
	tb.Wait(0)
	tb.Compute(0, 0.4, sh, "A3")
	tb.Compute(1, 1.0, sh, "A4")
	tb.Recv(1, 0)
	tb.Compute(1, 0.5, sh, "A5")
	g := tb.Finalize()

	sys := powercap.NewSystem(nil)
	fmt.Printf("%-14s%14s%14s%10s\n", "total W", "fixed LP(s)", "flow ILP(s)", "gap")
	for capW := 35.0; capW <= 110; capW += 5 {
		flow, ferr := sys.FlowILP(g, capW)
		fixed, lerr := sys.UpperBoundWhole(g, capW)
		if errors.Is(ferr, powercap.ErrFlowInfeasible) || errors.Is(lerr, powercap.ErrInfeasible) {
			fmt.Printf("%-14.0f%14s%14s\n", capW, "infeasible", "infeasible")
			continue
		}
		if ferr != nil {
			log.Fatal(ferr)
		}
		if lerr != nil {
			log.Fatal(lerr)
		}
		fmt.Printf("%-14.0f%14.4f%14.4f%9.2f%%\n",
			capW, fixed.MakespanS, flow.MakespanS,
			(fixed.MakespanS/flow.MakespanS-1)*100)
	}
	fmt.Println("\nFixing the event order costs almost nothing beyond the tightest caps,")
	fmt.Println("while turning an intractable ILP into a polynomial-time LP (Sec. 3.3).")
}
