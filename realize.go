package powercap

import (
	"context"

	"powercap/internal/schedule"
)

// Schedule realization: turning the LP's fractional solution into a
// schedule a runtime could execute, validated on the simulator
// (internal/schedule, DESIGN.md §9). The realized makespan against the LP
// objective is the bound gap — how much of the paper's theoretical bound
// survives discreteness and the cap.

// RealizedSchedule is a realizable schedule with its simulator validation:
// realized makespan, bound gap vs the LP objective, residual cap violation
// (0 for accepted schedules), and repair/switch counts.
type RealizedSchedule = schedule.Realized

// RealizeOptions tunes realization (switch overhead, cap tolerance, repair
// budget).
type RealizeOptions = schedule.Options

// Realization strategy names accepted by RealizeSchedule and SolveRealized.
const (
	// RealizeNearest rounds each task to the frontier configuration
	// closest in power to its LP mix (Sec. 3.2's rounding rule).
	RealizeNearest = string(schedule.Nearest)
	// RealizeDown rounds each task down to the highest frontier point not
	// above its LP-mixed power (cap-safe by construction).
	RealizeDown = string(schedule.Down)
	// RealizeReplay emulates the convex mix by mid-task configuration
	// switching at the paper's 145 µs per transition (Sec. 3.3).
	RealizeReplay = string(schedule.Replay)
	// RealizeBest realizes under every strategy and returns the fastest
	// cap-clean result.
	RealizeBest = "best"
)

// RealizeStrategies lists the accepted strategy names.
func RealizeStrategies() []string {
	return []string{RealizeNearest, RealizeDown, RealizeReplay, RealizeBest}
}

// RealizeSchedule converts a solved LP schedule into a realizable one under
// the named strategy and validates it on the simulator; the returned
// schedule never exceeds the cap (violations are repaired or reported as an
// error). The graph must be the one the schedule was solved from; the
// problem IR is reused from the System's solver cache, so realizing after a
// solve costs no rebuild.
func (s *System) RealizeSchedule(g *Graph, sched *Schedule, strategy string) (*RealizedSchedule, error) {
	return s.RealizeScheduleCtx(context.Background(), g, sched, strategy)
}

// RealizeScheduleCtx is RealizeSchedule with obs span parentage: the
// realization, its simulator validations, and any repairs record as spans
// under ctx.
func (s *System) RealizeScheduleCtx(ctx context.Context, g *Graph, sched *Schedule, strategy string) (*RealizedSchedule, error) {
	ir, err := s.solver().IRCtx(ctx, g)
	if err != nil {
		return nil, err
	}
	opts := schedule.DefaultOptions()
	if strategy == RealizeBest {
		rs, err := schedule.RealizeAllCtx(ctx, ir, sched, opts)
		if err != nil {
			return nil, err
		}
		return schedule.Best(rs), nil
	}
	strat, err := schedule.ParseStrategy(strategy)
	if err != nil {
		return nil, err
	}
	return schedule.RealizeCtx(ctx, ir, sched, strat, opts)
}

// RealizeAll realizes a solved schedule under every strategy (nearest,
// down, replay), skipping strategies whose repair budget is exhausted; use
// it to compare realization quality at one cap.
func (s *System) RealizeAll(g *Graph, sched *Schedule) ([]*RealizedSchedule, error) {
	ir, err := s.solver().IR(g)
	if err != nil {
		return nil, err
	}
	return schedule.RealizeAll(ir, sched, schedule.DefaultOptions())
}

// SolveRealized solves the fixed-vertex-order LP (decomposing at iteration
// boundaries, like UpperBound) and realizes the solution under the named
// strategy, returning both the LP bound and the validated realizable
// schedule.
func (s *System) SolveRealized(g *Graph, jobCapW float64, strategy string) (*Schedule, *RealizedSchedule, error) {
	return s.SolveRealizedCtx(context.Background(), g, jobCapW, false, strategy)
}

// SolveRealizedCtx is SolveRealized with per-request cancellation and an
// explicit choice between the whole-graph LP and iteration decomposition.
func (s *System) SolveRealizedCtx(ctx context.Context, g *Graph, jobCapW float64, whole bool, strategy string) (*Schedule, *RealizedSchedule, error) {
	var sched *Schedule
	var err error
	if whole {
		sched, err = s.UpperBoundWholeCtx(ctx, g, jobCapW)
	} else {
		sched, err = s.UpperBoundCtx(ctx, g, jobCapW)
	}
	if err != nil {
		return nil, nil, err
	}
	realized, err := s.RealizeScheduleCtx(ctx, g, sched, strategy)
	if err != nil {
		return nil, nil, err
	}
	return sched, realized, nil
}
