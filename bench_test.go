// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (DESIGN.md §4 maps exhibits to benchmarks), plus the
// ablation benches of DESIGN.md §5. Each benchmark regenerates its
// exhibit's data on a reduced instance and reports the exhibit's headline
// quantity as a custom metric, so `go test -bench=. -benchmem` doubles as
// a smoke reproduction. Full-size exhibits: `go run ./cmd/experiments all`.
package powercap_test

import (
	"bytes"
	"testing"

	"powercap"
	"powercap/internal/conductor"
	"powercap/internal/core"
	"powercap/internal/dag"
	"powercap/internal/flowilp"
	"powercap/internal/machine"
	"powercap/internal/pareto"
	"powercap/internal/policy"
	"powercap/internal/replay"
	"powercap/internal/sim"
	"powercap/internal/workloads"
)

// benchParams is the reduced instance size used by the harness.
func benchParams() workloads.Params {
	return workloads.Params{Ranks: 8, Iterations: 8, Seed: 1, WorkScale: 0.5}
}

// BenchmarkFig1ParetoFrontier builds the full configuration cloud of a
// CoMD task and extracts its convex Pareto frontier (Figure 1).
func BenchmarkFig1ParetoFrontier(b *testing.B) {
	m := machine.Default()
	shape := machine.DefaultShape()
	var hullLen int
	for i := 0; i < b.N; i++ {
		cfgs := m.Configs()
		cloud := make([]pareto.Point, len(cfgs))
		for k, c := range cfgs {
			cloud[k] = pareto.Point{PowerW: m.Power(shape, c, 1), TimeS: m.Duration(1, shape, c), Index: k}
		}
		hullLen = len(pareto.ConvexFrontier(cloud))
	}
	b.ReportMetric(float64(hullLen), "frontier-points")
}

// BenchmarkTable1ParetoConfigs rounds frontier selections under a sweep of
// power budgets (Table 1's consumer path).
func BenchmarkTable1ParetoConfigs(b *testing.B) {
	m := machine.Default()
	shape := machine.DefaultShape()
	cfgs := m.Configs()
	cloud := make([]pareto.Point, len(cfgs))
	for k, c := range cfgs {
		cloud[k] = pareto.Point{PowerW: m.Power(shape, c, 1), TimeS: m.Duration(1, shape, c), Index: k}
	}
	hull := pareto.ConvexFrontier(cloud)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for capW := 15.0; capW <= 90; capW++ {
			pareto.BestUnderCap(hull, capW)
			pareto.NearestToMix(hull, capW)
		}
	}
}

// fig2Trace builds the paper's Fig. 2 example exchange.
func fig2Trace() *dag.Graph {
	sh := machine.DefaultShape()
	tb := dag.NewBuilder(2)
	tb.Compute(0, 0.8, sh, "A1")
	tb.Isend(0, 1, 1<<20)
	tb.Compute(0, 0.6, sh, "A2")
	tb.Wait(0)
	tb.Compute(0, 0.4, sh, "A3")
	tb.Compute(1, 1.0, sh, "A4")
	tb.Recv(1, 0)
	tb.Compute(1, 0.5, sh, "A5")
	return tb.Finalize()
}

// BenchmarkFig2TraceAndTimeline builds the example task graph and derives
// its timeline (Figure 2).
func BenchmarkFig2TraceAndTimeline(b *testing.B) {
	m := machine.Default()
	for i := 0; i < b.N; i++ {
		g := fig2Trace()
		pts := sim.Points(g)
		for k, t := range g.Tasks {
			if t.Kind == dag.Compute {
				pts[k] = sim.TaskPoint{Duration: m.Duration(t.Work, t.Shape, m.MaxConfig()), PowerW: 50}
			}
		}
		if _, err := sim.Evaluate(g, pts, sim.SlackHoldsTaskPower, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3OverlapShift evaluates the co-scheduling example at two
// operating points (Figure 3).
func BenchmarkFig3OverlapShift(b *testing.B) {
	m := machine.Default()
	g := fig2Trace()
	for i := 0; i < b.N; i++ {
		for _, cfg := range []machine.Config{m.MaxConfig(), {FreqGHz: m.FreqMinGHz, Threads: m.Cores}} {
			pts := sim.Points(g)
			for k, t := range g.Tasks {
				if t.Kind == dag.Compute {
					pts[k] = sim.TaskPoint{Duration: m.Duration(t.Work, t.Shape, cfg), PowerW: m.Power(t.Shape, cfg, 1)}
				}
			}
			if _, err := sim.Evaluate(g, pts, sim.SlackHoldsTaskPower, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig8FlowVsFixed solves one power point of the flow-ILP vs
// fixed-order comparison (Figure 8) and reports the formulations' gap.
func BenchmarkFig8FlowVsFixed(b *testing.B) {
	m := machine.Default()
	g := fig2Trace()
	flow := flowilp.NewSolver(m, nil)
	fixed := core.NewSolver(m, nil)
	gap := 0.0
	for i := 0; i < b.N; i++ {
		fres, err := flow.Solve(g, 70)
		if err != nil {
			b.Fatal(err)
		}
		lres, err := fixed.Solve(g, 70)
		if err != nil {
			b.Fatal(err)
		}
		gap = (lres.MakespanS/fres.MakespanS - 1) * 100
	}
	b.ReportMetric(gap, "gap-%")
}

// compareBench runs the three-way comparison of Figures 9–11/13–15 for one
// workload and cap, reporting the LP-vs-Static potential improvement.
func compareBench(b *testing.B, name string, perSocket float64) {
	b.Helper()
	w, err := workloads.ByName(name, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	sys := powercap.SystemFor(w, nil)
	var cmp *powercap.Comparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err = sys.Compare(w, perSocket)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.LPvsStaticPct, "LPvsStatic-%")
	b.ReportMetric(cmp.LPvsConductorPct, "LPvsConductor-%")
}

// BenchmarkFig9LPvsStatic regenerates one cross-benchmark power point of
// Figure 9 (BT at 40 W per socket).
func BenchmarkFig9LPvsStatic(b *testing.B) { compareBench(b, "BT", 40) }

// BenchmarkFig10LPvsConductor regenerates one power point of Figure 10
// (LULESH at 50 W per socket).
func BenchmarkFig10LPvsConductor(b *testing.B) { compareBench(b, "LULESH", 50) }

// BenchmarkFig11CoMD regenerates CoMD's headline point (30 W, Figure 11).
func BenchmarkFig11CoMD(b *testing.B) { compareBench(b, "CoMD", 30) }

// BenchmarkFig13BT regenerates BT's headline point (30 W, Figure 13).
func BenchmarkFig13BT(b *testing.B) { compareBench(b, "BT", 30) }

// BenchmarkFig14SP regenerates SP's worst-for-Conductor point (60 W,
// Figure 14).
func BenchmarkFig14SP(b *testing.B) { compareBench(b, "SP", 60) }

// BenchmarkFig15LULESH regenerates LULESH's 40 W point (Figure 15).
func BenchmarkFig15LULESH(b *testing.B) { compareBench(b, "LULESH", 40) }

// BenchmarkFig12CoMDTasks solves one CoMD iteration's LP at 30 W and
// gathers the long-task power/duration scatter (Figure 12).
func BenchmarkFig12CoMDTasks(b *testing.B) {
	w := workloads.CoMD(benchParams())
	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		b.Fatal(err)
	}
	sl := slices[4]
	lps := core.NewSolver(machine.Default(), w.EffScale)
	st := policy.NewStatic(machine.Default(), w.EffScale)
	jobCap := 30.0 * float64(w.Graph.NumRanks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lps.Solve(sl.Graph, jobCap); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Run(sl.Graph, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3LULESH regenerates the single-iteration LULESH task
// characteristics at 50 W (Table 3).
func BenchmarkTable3LULESH(b *testing.B) {
	w := workloads.LULESH(benchParams())
	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		b.Fatal(err)
	}
	sl := slices[4]
	m := machine.Default()
	lps := core.NewSolver(m, w.EffScale)
	cd := conductor.New(m, w.EffScale)
	jobCap := 50.0 * float64(w.Graph.NumRanks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lps.Solve(sl.Graph, jobCap); err != nil {
			b.Fatal(err)
		}
		if _, err := cd.Run(w.Graph, jobCap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadsReplay regenerates the Sec. 6.2 replay-overhead
// accounting: a full per-iteration LP solve plus discrete replay.
func BenchmarkOverheadsReplay(b *testing.B) {
	w := workloads.CoMD(benchParams())
	m := machine.Default()
	lps := core.NewSolver(m, w.EffScale)
	jobCap := 50.0 * float64(w.Graph.NumRanks)
	sched, err := lps.SolveIterations(w.Graph, jobCap)
	if err != nil {
		b.Fatal(err)
	}
	opts := replay.DefaultOptions(m, w.EffScale)
	b.ResetTimer()
	var switches int
	for i := 0; i < b.N; i++ {
		rep, err := replay.Run(w.Graph, sched, opts)
		if err != nil {
			b.Fatal(err)
		}
		switches = rep.Switches
	}
	b.ReportMetric(float64(switches), "switches")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationConvexVsDiscrete measures the rounding gap between the
// continuous LP bound and the discrete-rounded replayed schedule.
func BenchmarkAblationConvexVsDiscrete(b *testing.B) {
	w := workloads.CoMD(benchParams())
	m := machine.Default()
	lps := core.NewSolver(m, w.EffScale)
	jobCap := 40.0 * float64(w.Graph.NumRanks)
	gap := 0.0
	for i := 0; i < b.N; i++ {
		sched, err := lps.SolveIterations(w.Graph, jobCap)
		if err != nil {
			b.Fatal(err)
		}
		opts := replay.DefaultOptions(m, w.EffScale)
		rep, err := replay.Run(w.Graph, sched, opts)
		if err != nil {
			b.Fatal(err)
		}
		gap = (rep.MakespanS/sched.MakespanS - 1) * 100
	}
	b.ReportMetric(gap, "rounding-gap-%")
}

// BenchmarkAblationSlackPricing compares the flow ILP's two slack models:
// observed (idle) vs hold-at-task-power (the LP's assumption).
func BenchmarkAblationSlackPricing(b *testing.B) {
	m := machine.Default()
	g := fig2Trace()
	obs := flowilp.NewSolver(m, nil)
	hold := flowilp.NewSolver(m, nil)
	hold.Slack = flowilp.SlackHold
	gap := 0.0
	for i := 0; i < b.N; i++ {
		ro, err := obs.Solve(g, 60)
		if err != nil {
			b.Fatal(err)
		}
		rh, err := hold.Solve(g, 60)
		if err != nil {
			b.Fatal(err)
		}
		gap = (rh.MakespanS/ro.MakespanS - 1) * 100
	}
	b.ReportMetric(gap, "slack-pricing-gap-%")
}

// BenchmarkAblationEventOrder quantifies what fixing the event order costs
// across a band of caps (the Fig. 8 ablation aggregated).
func BenchmarkAblationEventOrder(b *testing.B) {
	m := machine.Default()
	g := fig2Trace()
	flow := flowilp.NewSolver(m, nil)
	fixed := core.NewSolver(m, nil)
	worst := 0.0
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, capW := range []float64{45, 55, 65, 80, 100} {
			fres, err := flow.Solve(g, capW)
			if err != nil {
				b.Fatal(err)
			}
			lres, err := fixed.Solve(g, capW)
			if err != nil {
				b.Fatal(err)
			}
			if gap := (lres.MakespanS/fres.MakespanS - 1) * 100; gap > worst {
				worst = gap
			}
		}
	}
	b.ReportMetric(worst, "worst-gap-%")
}

// BenchmarkSimplexSchedulingLP times one per-iteration scheduling LP of
// paper-like shape (the solver the whole reproduction rests on).
func BenchmarkSimplexSchedulingLP(b *testing.B) {
	w := workloads.SP(benchParams())
	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		b.Fatal(err)
	}
	sl := slices[4]
	lps := core.NewSolver(machine.Default(), w.EffScale)
	jobCap := 50.0 * float64(w.Graph.NumRanks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := lps.Solve(sl.Graph, jobCap)
		if err != nil {
			b.Fatal(err)
		}
		_ = sched
	}
}

// BenchmarkConductorIteration times the adaptive runtime end to end.
func BenchmarkConductorIteration(b *testing.B) {
	w := workloads.BT(benchParams())
	cd := conductor.New(machine.Default(), w.EffScale)
	jobCap := 40.0 * float64(w.Graph.NumRanks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cd.Run(w.Graph, jobCap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSlackAwareLP measures the gap between the main LP
// (slack holds task power, fewer events) and the slack-separated variant
// (idle-priced slack, task/slack boundary events) — the tradeoff Sec. 3.3
// decides in favor of fewer events.
func BenchmarkAblationSlackAwareLP(b *testing.B) {
	w := workloads.BT(benchParams())
	slices, err := dag.SliceAll(w.Graph)
	if err != nil {
		b.Fatal(err)
	}
	sl := slices[4]
	lps := core.NewSolver(machine.Default(), w.EffScale)
	jobCap := 35.0 * float64(w.Graph.NumRanks)
	gap := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		main, err := lps.Solve(sl.Graph, jobCap)
		if err != nil {
			b.Fatal(err)
		}
		aware, err := lps.SolveSlackAware(sl.Graph, jobCap)
		if err != nil {
			b.Fatal(err)
		}
		gap = (main.MakespanS/aware.MakespanS - 1) * 100
	}
	b.ReportMetric(gap, "slack-hold-cost-%")
}

// BenchmarkAblationDiscreteILP measures the exact integrality gap of the
// continuous relaxation (Eq. 5 vs Eq. 6) on a small instance.
func BenchmarkAblationDiscreteILP(b *testing.B) {
	tb := dag.NewBuilder(3)
	sh := machine.DefaultShape()
	for r := 0; r < 3; r++ {
		tb.Compute(r, 0.3+0.2*float64(r), sh, "w")
	}
	tb.Collective("sync")
	for r := 0; r < 3; r++ {
		tb.Compute(r, 0.3, sh, "w2")
	}
	g := tb.Finalize()
	lps := core.NewSolver(machine.Default(), nil)
	gap := 0.0
	for i := 0; i < b.N; i++ {
		cont, err := lps.Solve(g, 100)
		if err != nil {
			b.Fatal(err)
		}
		disc, err := lps.SolveDiscrete(g, 100)
		if err != nil {
			b.Fatal(err)
		}
		gap = (disc.MakespanS/cont.MakespanS - 1) * 100
	}
	b.ReportMetric(gap, "integrality-gap-%")
}

// BenchmarkConfigOnlyConductor times the configuration-selection-only
// variant (Sec. 6's "less overhead ... lower performance" comparison).
func BenchmarkConfigOnlyConductor(b *testing.B) {
	w := workloads.LULESH(benchParams())
	cd := conductor.NewConfigOnly(machine.Default(), w.EffScale)
	jobCap := 40.0 * float64(w.Graph.NumRanks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cd.Run(w.Graph, jobCap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceRoundTrip times trace serialization (the pipeline's I/O
// boundary).
func BenchmarkTraceRoundTrip(b *testing.B) {
	w := workloads.SP(benchParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := powercap.WriteTrace(&buf, "sp", w.Graph, w.EffScale); err != nil {
			b.Fatal(err)
		}
		if _, _, err := powercap.ReadTrace(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Solver-engine sweep benchmarks (DESIGN.md "Solver engine
// architecture"): the cost of evaluating the LP bound across a cap family,
// serial vs parallel, on the facade the experiments drive. The
// dense/sparse and cold/warm axes are isolated in
// internal/core/bench_scale_test.go; here the workload-level orchestration
// is measured. Emit machine-readable results with
// `go run ./cmd/experiments -benchjson BENCH_solver.json solver`.

func benchSweepSystem(b *testing.B) (*powercap.System, *workloads.Workload, []float64) {
	b.Helper()
	w := workloads.SP(benchParams())
	sys := powercap.SystemFor(w, nil)
	var caps []float64
	for per := 70.0; per >= 35; per -= 5 {
		caps = append(caps, per*float64(w.Graph.NumRanks))
	}
	return sys, w, caps
}

// BenchmarkSweepSerial: warm-started sweep on one goroutine.
func BenchmarkSweepSerial(b *testing.B) {
	sys, w, caps := benchSweepSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := sys.SolveSweep(w.Graph, caps)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Err != nil {
				b.Fatal(pt.Err)
			}
		}
	}
}

// BenchmarkSweepParallel4: the same sweep chunked over four workers.
func BenchmarkSweepParallel4(b *testing.B) {
	sys, w, caps := benchSweepSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := sys.SweepParallel(w.Graph, caps, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Err != nil {
				b.Fatal(pt.Err)
			}
		}
	}
}

// BenchmarkSweepJobsParallel: three workloads' sweeps fanned over a shared
// worker pool — the shape of the paper's multi-benchmark figures.
func BenchmarkSweepJobsParallel(b *testing.B) {
	sys := powercap.NewSystem(nil)
	var jobs []powercap.SweepJob
	for _, name := range []string{"SP", "LULESH", "CoMD"} {
		w, err := workloads.ByName(name, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		var caps []float64
		for per := 70.0; per >= 40; per -= 10 {
			caps = append(caps, per*float64(w.Graph.NumRanks))
		}
		jobs = append(jobs, powercap.SweepJob{Name: name, Graph: w.Graph, CapsW: caps})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range sys.SweepJobsParallel(jobs, 3) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}
