# Development targets. `make check` is the full gate: vet, build, tests
# with the race detector (the parallel sweep paths are exercised by the
# top-level sweep tests).

GO ?= go

.PHONY: all build vet test race bench serve-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Sweep/solver benchmarks only (fast smoke: one iteration each).
bench:
	$(GO) test -run xxx -bench 'Sweep' -benchtime 1x ./internal/core/ .

# End-to-end daemon smoke: build pcschedd, start it on a random port, fire
# a solve, a cache-hit repeat, and a cancelled request, assert the /metrics
# counters, then SIGTERM and require a clean exit.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 -v ./cmd/pcschedd/

check: vet build race serve-smoke
