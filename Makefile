# Development targets. `make check` is the full gate: vet, build, tests
# with the race detector (the parallel sweep paths are exercised by the
# top-level sweep tests).

GO ?= go

.PHONY: all build vet test race bench serve-smoke realization-smoke chaos-smoke fuzz-smoke obs-smoke scale-smoke market-smoke kernel-smoke twin-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector is 10-20× on a 1-CPU runner; internal/core alone runs
# ~11 min there, past go test's default 10m per-package timeout.
race:
	$(GO) test -race -timeout 30m ./...

# Sweep/solver benchmarks only (fast smoke: one iteration each).
bench:
	$(GO) test -run xxx -bench 'Sweep' -benchtime 1x ./internal/core/ .

# End-to-end daemon smoke: build pcschedd, start it on a random port, fire
# a solve, a cache-hit repeat, and a cancelled request, assert the /metrics
# counters, then SIGTERM and require a clean exit.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 -v ./cmd/pcschedd/

# Realization pipeline smoke: race-detected runs of the problem-IR and
# schedule-realization packages (including the sweep property test: realized
# makespan ≥ LP bound, zero cap violation), then one small end-to-end
# realization exhibit.
realization-smoke:
	$(GO) test -race -count=1 ./internal/problem/ ./internal/schedule/
	$(GO) run ./cmd/experiments -ranks 4 -benchjson /dev/null realization

# Fault-injected soak under the race detector: every fault class armed
# against a live in-process daemon; asserts zero crashes, ≥99% valid
# responses, never a cap-violating schedule, and full recovery (breakers
# closed, bit-identical results) once faults clear. The twin-chaos case
# storms an adaptive daemon with lp-stall/lp-nan/worker-panic armed and
# requires the controller back at full fidelity with breakers closed
# within a bounded number of calm epochs.
chaos-smoke:
	$(GO) test -race -run 'TestChaosSoak|TestTwinChaosRecovery' -count=1 -v ./internal/service/

# Observability smoke: race-detected span/flight-recorder/SLO-engine tests,
# then a traced solve against a real pcschedd — validates the inline Chrome
# trace JSON (nesting checked strictly), request-ID propagation into
# header/body/access-log, double /metrics scrape with counter monotonicity,
# and /debug/pprof. The second daemon leg (race-detected end to end) arms an
# lp-stall fault window via PCSCHEDD_FAULTS and requires the flight dump to
# name the brownout rung and the SLO burn spike, plus a SIGQUIT dump that
# round-trips as wide-event JSON (DESIGN.md §16).
obs-smoke:
	$(GO) test -race -count=1 ./internal/obs/ ./internal/slo/
	$(GO) test -run TestObsSmoke -count=1 -v ./cmd/pcschedd/
	$(GO) test -race -run TestFlightRecorderSmoke -count=1 -v ./cmd/pcschedd/

# Large-trace path smoke: race-detected runs of the coarsening, windowed
# decomposition, and synthetic-generator tests (including the property that
# windowing alone never beats the monolithic bound), then a shrunken
# end-to-end scale exhibit (gap ladder + a monolithic-breakdown size).
scale-smoke:
	$(GO) test -race -count=1 ./internal/coarsen/
	$(GO) test -race -count=1 -run 'TestWindowed|TestSynthetic' ./internal/core/ ./internal/workloads/
	$(GO) test -run TestScaleExhibitSmoke -count=1 -v ./cmd/experiments/

# Cluster power market smoke: race-detected allocator tests (policy
# properties, convergence, floors, degradation), then one real /v1/cluster
# allocation against a spawned pcschedd — convergence, budget feasibility,
# per-job cache seeding, cluster metrics, clean shutdown.
market-smoke:
	$(GO) test -race -count=1 ./internal/market/
	$(GO) test -run TestMarketSmoke -count=1 -v ./cmd/pcschedd/

# LP kernel smoke: race-detected runs of the lp packages (basis engines,
# presolve round-trip, pricing, degenerate-cycling guards — the tests cover
# both the LU and eta engines), then one warm CapSession probe sequence on
# the LU engine through internal/core.
kernel-smoke:
	$(GO) test -race -count=1 ./internal/lp/...
	$(GO) test -race -count=1 -run 'TestCapSessionWarmProbeEngines|TestEngineEquivalenceGoldenObjectives' ./internal/core/

# Adaptive overload control plane + deterministic traffic twin smoke:
# race-detected controller/brownout/twin tests, then the end-to-end
# TestTwinSmoke — a seeded flash crowd against a real adaptive daemon vs
# a static one (adaptive goodput fraction must be ≥ static) and a
# record/replay regression (two replays byte-identical, zero mismatches).
twin-smoke:
	$(GO) test -race -count=1 ./internal/adapt/ ./internal/twin/
	$(GO) test -race -count=1 -run 'TestBrownout|TestRetry|TestDeadline|TestParking|TestDrainCheckpoint|TestAdaptOff' ./internal/service/
	$(GO) test -run TestTwinSmoke -count=1 -v ./cmd/pcschedd/

# Bounded fuzz sessions over the trace parser, the canonical DAG digest
# (the content-addressing the schedule cache rests on), and the Markowitz
# sparse LU factorization (factor → FTRAN/BTRAN vs dense LU). Seeds are
# checked in via f.Add; 5s each keeps the gate fast while still exploring.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzRead -fuzztime 5s ./internal/trace/
	$(GO) test -run xxx -fuzz FuzzDigest -fuzztime 5s ./internal/dag/
	$(GO) test -run xxx -fuzz FuzzLU -fuzztime 5s ./internal/lp/basis/

check: vet build race serve-smoke realization-smoke chaos-smoke obs-smoke scale-smoke market-smoke kernel-smoke twin-smoke fuzz-smoke
