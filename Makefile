# Development targets. `make check` is the full gate: vet, build, tests
# with the race detector (the parallel sweep paths are exercised by the
# top-level sweep tests).

GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Sweep/solver benchmarks only (fast smoke: one iteration each).
bench:
	$(GO) test -run xxx -bench 'Sweep' -benchtime 1x ./internal/core/ .

check: vet build race
