package powercap

import (
	"context"

	"powercap/internal/resilience"
)

// Resilient solve facade (DESIGN.md §10): UpperBound through the fallback
// ladder. When the preferred sparse LP backend breaks down numerically, the
// ladder retries with backoff, descends to the dense tableau, then to a
// slack-aware heuristic, then to the static fair-share policy — every
// sub-top-rung result simulator-validated and cap-clean, and tagged Degraded
// with a machine-readable reason.

// Re-exported resilience types.
type (
	// ResilienceConfig tunes the fallback ladder (retry budgets, backoff,
	// circuit breakers, per-rung deadline slices).
	ResilienceConfig = resilience.Config
	// ResilientOutcome is a ladder result: the schedule plus which rung
	// produced it and whether it is degraded.
	ResilientOutcome = resilience.Outcome
	// ResilientRung identifies one ladder level.
	ResilientRung = resilience.Rung
)

// Ladder rungs, top (preferred) to bottom (last resort).
const (
	RungSparse    = resilience.RungSparse
	RungDense     = resilience.RungDense
	RungHeuristic = resilience.RungHeuristic
	RungStatic    = resilience.RungStatic
)

// Ladder returns the System's shared fallback ladder, created on first use
// from s.Resilience. Breaker state is shared across requests — a backend
// that keeps failing is skipped for everyone until its cooldown probe.
func (s *System) Ladder() *resilience.Ladder {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ladder == nil {
		s.ladder = resilience.New(s.Resilience)
	}
	return s.ladder
}

// UpperBoundResilient is UpperBound through the fallback ladder: it returns
// a schedule whenever any rung — including the static last resort — can
// produce a cap-respecting one, and reports through the Outcome whether and
// why the result is degraded below the LP bound.
func (s *System) UpperBoundResilient(g *Graph, jobCapW float64, whole bool) (*ResilientOutcome, error) {
	return s.UpperBoundResilientCtx(context.Background(), g, jobCapW, whole)
}

// UpperBoundResilientCtx is UpperBoundResilient with per-request
// cancellation. Each rung gets a bounded slice of the remaining deadline, so
// a slow top rung cannot starve the fallbacks; an error is returned only for
// bad problems (ErrInfeasible, malformed graphs), a dead context, or when
// every rung fails.
func (s *System) UpperBoundResilientCtx(ctx context.Context, g *Graph, jobCapW float64, whole bool) (*ResilientOutcome, error) {
	return s.Ladder().Solve(ctx, s.solver(), g, jobCapW, !whole)
}

// HeuristicOutcomeCtx solves with the ladder's slack-aware heuristic rung
// only — no LP at all. The result is simulator-validated and cap-clean but
// always tagged Degraded ("brownout:heuristic"). This is the deepest rung
// of the service's adaptive brownout ladder, not a replacement for the
// fallback path: breaker state is neither consulted nor charged.
func (s *System) HeuristicOutcomeCtx(ctx context.Context, g *Graph, jobCapW float64) (*ResilientOutcome, error) {
	return s.Ladder().SolveHeuristic(ctx, s.solver(), g, jobCapW)
}
