package powercap

// Cluster power market facade. The paper's motivating setting — "total
// machine power will be divided across multiple simultaneous jobs" — is
// served by internal/market: each job's whole-graph LP becomes a
// re-solvable power–time curve (core.CapSession), and AllocateCluster
// splits one site-wide budget across the jobs under a pluggable policy.
// See DESIGN.md §13.

import (
	"context"
	"fmt"

	"powercap/internal/core"
	"powercap/internal/market"
)

// Cluster allocation types re-exported from internal/market.
type (
	// ClusterPolicy names a budget-splitting strategy: PolicyUniform,
	// PolicyProportional, PolicyMarket, or PolicyAuction.
	ClusterPolicy = market.Policy
	// ClusterAllocation is a solved cluster split: per-job caps and
	// schedules, the summed makespan the market minimizes, and the
	// iteration/convergence trace.
	ClusterAllocation = market.Allocation
	// ClusterJobAllocation is one job's slice of the budget.
	ClusterJobAllocation = market.JobAllocation
	// ClusterTransfer is one recorded market transfer.
	ClusterTransfer = market.Transfer
	// ClusterOptions tunes AllocateCluster (policy, convergence tolerance,
	// iteration cap, floor-bisection resolution, minimum transfer).
	ClusterOptions = market.Options
	// BudgetError reports a site budget below the sum of per-job
	// feasibility floors, naming each binding job (errors.As target).
	BudgetError = market.BudgetError
)

// The budget-splitting policies.
const (
	// PolicyUniform splits the budget equally (clamped to floors) — the
	// site-wide analogue of Static capping, and the baseline to beat.
	PolicyUniform = market.Uniform
	// PolicyProportional splits in proportion to each job's saturation
	// demand.
	PolicyProportional = market.Proportional
	// PolicyMarket equalizes the marginal value of power across jobs by
	// iterative watt transfers; never worse than PolicyUniform.
	PolicyMarket = market.Market
	// PolicyAuction greedily grants watt quanta to the steepest bidder.
	PolicyAuction = market.Auction
)

// ClusterPolicies lists the accepted policy names.
func ClusterPolicies() []ClusterPolicy { return market.Policies() }

// ParseClusterPolicy validates a policy name ("" defaults to the market).
func ParseClusterPolicy(name string) (ClusterPolicy, error) { return market.ParsePolicy(name) }

// CapSession is a re-solvable whole-graph LP for cap-only changes: built
// once, re-aimed at arbitrary caps with dual-simplex warm starts. It is the
// probe the cluster market uses on each job's power–time curve; it
// implements market.Session and is NOT safe for concurrent use.
type CapSession = core.CapSession

// NewCapSession builds a warm re-solve session for g on this System's
// shared solver, so the session reuses the digest-keyed problem-IR and
// frontier caches (a graph the System has already solved costs no rebuild).
func (s *System) NewCapSession(ctx context.Context, g *Graph) (*CapSession, error) {
	return s.solver().NewCapSession(ctx, g)
}

// ClusterJob is one participant in a cluster allocation: a named graph plus
// the per-socket efficiency variation of the machine partition it runs on.
// Jobs occupy disjoint sockets, so each carries its own efficiency scales
// (nil = 1.0 everywhere); the socket model is shared and set per call.
type ClusterJob struct {
	Name     string
	Graph    *Graph
	EffScale []float64
}

// AllocateCluster divides one site-wide power budget across jobs. Each
// job's whole-graph LP is built once; the allocator then probes its
// power–time curve at adaptively chosen caps with dual-simplex warm starts
// (floor and demand bisection, then the policy's split — for PolicyMarket,
// iterative flat→steep watt transfers until marginal values equalize
// within tolerance or floors bind). model nil means DefaultModel. A budget
// below the sum of per-job feasibility floors fails with a *BudgetError
// naming the binding jobs; a job whose solver breaks down mid-allocation is
// frozen at its last-good cap and marked Degraded instead of failing the
// cluster. Jobs in the result are in input order.
func AllocateCluster(ctx context.Context, jobs []ClusterJob, budgetW float64, model *Model, opts ClusterOptions) (*ClusterAllocation, error) {
	if model == nil {
		model = DefaultModel()
	}
	mjobs := make([]market.Job, len(jobs))
	for i, j := range jobs {
		if j.Graph == nil {
			return nil, fmt.Errorf("powercap: cluster job %q has no graph", j.Name)
		}
		cs, err := core.NewSolver(model, j.EffScale).NewCapSession(ctx, j.Graph)
		if err != nil {
			return nil, fmt.Errorf("powercap: cluster job %q: %w", j.Name, err)
		}
		mjobs[i] = market.Job{Name: j.Name, Session: cs}
	}
	return market.Allocate(ctx, mjobs, budgetW, opts)
}
