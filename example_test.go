package powercap_test

// Godoc examples for the public API. These run under `go test` and double
// as verified documentation snippets.

import (
	"fmt"

	"powercap"
)

// ExampleSystem_UpperBoundWhole computes the paper's performance bound for
// a hand-traced two-rank application under a 90 W job budget. The LP
// equalizes the two phase-1 tasks by giving the heavy rank more power.
func ExampleSystem_UpperBoundWhole() {
	tb := powercap.NewTrace(2)
	sh := powercap.DefaultShape()
	tb.Compute(0, 1.0, sh, "phase1")
	tb.Compute(1, 2.0, sh, "phase1")
	tb.Collective("allreduce")
	g := tb.Finalize()

	sys := powercap.NewSystem(nil)
	sched, err := sys.UpperBound(g, 90)
	if err != nil {
		panic(err)
	}

	var p0, p1 float64
	for tid, task := range g.Tasks {
		if task.Class == "phase1" {
			if task.Rank == 0 {
				p0 = sched.Choices[tid].PowerW
			} else {
				p1 = sched.Choices[tid].PowerW
			}
		}
	}
	fmt.Printf("heavy rank gets more power: %v\n", p1 > p0)
	// Output:
	// heavy rank gets more power: true
}

// ExampleSystem_Replay validates a solved schedule by replaying it on the
// simulator: the instantaneous job power never exceeds the constraint.
func ExampleSystem_Replay() {
	tb := powercap.NewTrace(2)
	sh := powercap.DefaultShape()
	tb.Compute(0, 0.5, sh, "w")
	tb.Compute(1, 1.0, sh, "w")
	g := tb.Finalize()

	sys := powercap.NewSystem(nil)
	sched, _ := sys.UpperBound(g, 80)
	rep, _ := sys.Replay(g, sched, true)
	fmt.Printf("within constraint: %v\n", rep.CapViolationW < 1e-6)
	// Output:
	// within constraint: true
}

// ExampleSystem_Compare runs the paper's three-way comparison — the LP
// bound versus uniform Static capping versus the adaptive Conductor — on
// a generated benchmark proxy.
func ExampleSystem_Compare() {
	w := powercap.NewWorkload("BT", powercap.WorkloadParams{
		Ranks: 4, Iterations: 6, Seed: 1, WorkScale: 0.25,
	})
	sys := powercap.SystemFor(w, nil)
	cmp, err := sys.Compare(w, 40) // 40 W per socket
	if err != nil {
		panic(err)
	}
	fmt.Printf("bound is fastest: %v\n",
		cmp.LPBoundS <= cmp.StaticS && cmp.LPBoundS <= cmp.ConductorS)
	// Output:
	// bound is fastest: true
}
